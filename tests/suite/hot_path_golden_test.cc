/**
 * @file
 * Batched-hot-path golden identity at suite scope: the acceptance bar
 * for the fast lane is that per-pair results, result-cache journal
 * bytes and telemetry series are byte-identical to the per-op
 * reference lane at ANY batch size and ANY job count, including under
 * fault injection that fires mid-batch. These tests pin that contract
 * end to end, and pin that neither lane knob is part of the config
 * key (switching lanes must never invalidate a cached sweep).
 */

#include "suite/result_cache.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

#include "telemetry/sink.hh"

namespace spec17 {
namespace suite {
namespace {

using workloads::InputSize;

RunnerOptions
fastOptions(unsigned jobs, std::uint64_t batch_ops,
            bool unbatched = false)
{
    RunnerOptions options;
    options.sampleOps = 60000;
    options.warmupOps = 20000;
    options.jobs = jobs;
    options.batchOps = batch_ops;
    options.unbatchedStepping = unbatched;
    return options;
}

RunnerOptions
referenceOptions()
{
    return fastOptions(1, 0, /*unbatched=*/true);
}

std::string
tempBase(const char *tag)
{
    return std::string(::testing::TempDir()) + "/spec17_hp_" + tag;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<std::string>
pairNames(InputSize size)
{
    std::vector<std::string> names;
    for (const auto &pair :
         enumeratePairs(workloads::cpu2006Suite(), size))
        names.push_back(pair.displayName());
    return names;
}

void
expectResultsIdentical(const std::vector<PairResult> &a,
                       const std::vector<PairResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].errored, b[i].errored) << a[i].name;
        EXPECT_EQ(a[i].attempts, b[i].attempts) << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].wallCycles, b[i].wallCycles) << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].seconds, b[i].seconds) << a[i].name;
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(a[i].counters.get(event), b[i].counters.get(event))
                << a[i].name << " " << perfEventName(event);
        }
    }
}

TEST(HotPathGolden, ResultsMatchReferenceLaneAtAnyBatchSize)
{
    const auto golden = SuiteRunner(referenceOptions())
                            .runAll(workloads::cpu2006Suite(),
                                    InputSize::Test);
    // 1 = degenerate, 7 = never divides a sampling interval, 64/256/
    // 1024 and the simulator default cover the production sizes.
    for (const std::uint64_t batch :
         {1ull, 7ull, 64ull, 256ull, 1024ull, 0ull}) {
        SCOPED_TRACE(::testing::Message() << "batchOps=" << batch);
        const auto batched = SuiteRunner(fastOptions(1, batch))
                                 .runAll(workloads::cpu2006Suite(),
                                         InputSize::Test);
        expectResultsIdentical(golden, batched);
    }
}

TEST(HotPathGolden, ResultsMatchReferenceLaneOnWorkerPool)
{
    const auto golden = SuiteRunner(referenceOptions())
                            .runAll(workloads::cpu2006Suite(),
                                    InputSize::Test);
    const auto batched = SuiteRunner(fastOptions(8, 64))
                             .runAll(workloads::cpu2006Suite(),
                                     InputSize::Test);
    expectResultsIdentical(golden, batched);
}

TEST(HotPathGolden, ConfigKeyIgnoresLaneKnobs)
{
    // The lane is an execution strategy, not a configuration: a
    // journal written unbatched replays on the fast lane and vice
    // versa, at any batch size.
    const std::string reference = SuiteRunner(referenceOptions())
                                      .configKey();
    EXPECT_EQ(SuiteRunner(fastOptions(1, 0)).configKey(), reference);
    EXPECT_EQ(SuiteRunner(fastOptions(8, 7)).configKey(), reference);
    EXPECT_EQ(SuiteRunner(fastOptions(1, 4096)).configKey(), reference);
}

TEST(HotPathGolden, JournalBytesIdenticalAcrossLanes)
{
    const auto &suite = workloads::cpu2006Suite();

    const std::string ref_base = tempBase("ref");
    ResultCache ref_cache(ref_base);
    ref_cache.invalidate();
    ref_cache.runOrLoad(SuiteRunner(referenceOptions()), suite,
                        InputSize::Test);
    const std::string ref_bytes =
        fileBytes(ref_base + ".cpu2006.test.csv");
    ASSERT_FALSE(ref_bytes.empty());

    for (const std::uint64_t batch : {7ull, 64ull}) {
        SCOPED_TRACE(::testing::Message() << "batchOps=" << batch);
        const std::string base =
            tempBase(batch == 7 ? "b7" : "b64");
        ResultCache cache(base);
        cache.invalidate();
        cache.runOrLoad(SuiteRunner(fastOptions(8, batch)), suite,
                        InputSize::Test);
        EXPECT_EQ(fileBytes(base + ".cpu2006.test.csv"), ref_bytes);
        cache.invalidate();
    }
    ref_cache.invalidate();
}

TEST(HotPathGolden, TelemetrySeriesIdenticalAcrossLanes)
{
    // sampleIntervalOps = 20000 with batch sizes 7 and 4096: neither
    // divides the interval, so the step() clamp is what keeps every
    // sample boundary exact. The reference series doubles as proof.
    const auto &suite = workloads::cpu2006Suite();

    telemetry::MemorySink ref_sink;
    RunnerOptions ref_options = referenceOptions();
    ref_options.sampleIntervalOps = 20000;
    ref_options.telemetrySink = &ref_sink;
    SuiteRunner(ref_options).runAll(suite, InputSize::Test);
    ASSERT_FALSE(ref_sink.all().empty());

    for (const std::uint64_t batch : {7ull, 4096ull}) {
        SCOPED_TRACE(::testing::Message() << "batchOps=" << batch);
        telemetry::MemorySink sink;
        RunnerOptions options = fastOptions(1, batch);
        options.sampleIntervalOps = 20000;
        options.telemetrySink = &sink;
        SuiteRunner(options).runAll(suite, InputSize::Test);

        ASSERT_EQ(sink.all().size(), ref_sink.all().size());
        for (const auto &[name, series] : ref_sink.all()) {
            const telemetry::TimeSeries *other = sink.find(name);
            ASSERT_NE(other, nullptr) << name;
            std::ostringstream ref_csv, csv;
            telemetry::renderSeriesCsv(series, ref_csv);
            telemetry::renderSeriesCsv(*other, csv);
            EXPECT_EQ(csv.str(), ref_csv.str()) << name;
        }
    }
}

TEST(HotPathGolden, InjectedFaultsFireIdenticallyMidBatch)
{
    // A watchdog op-deadline trips at a chunk boundary; the batched
    // lane's internal batches are clamped to the same chunk sizes, so
    // the failure must land at the identical op count. An injected
    // throw on another pair checks exception containment too.
    const auto names = pairNames(InputSize::Test);
    const std::string &stalled = names[1];
    const std::string &thrown = names[names.size() / 2];

    const auto sweep = [&](RunnerOptions options) {
        ScriptedFaultInjector injector;
        injector.set(stalled, 0, FaultInjector::Action::Stall);
        injector.set(thrown, 0, FaultInjector::Action::Throw);
        options.faultInjector = &injector;
        options.pairDeadlineOps = 200000; // > warmup + sample
        return SuiteRunner(options).runAll(workloads::cpu2006Suite(),
                                           InputSize::Test);
    };

    const auto golden = sweep(referenceOptions());
    const auto batched = sweep(fastOptions(4, 7));
    expectResultsIdentical(golden, batched);

    for (const auto &results : {golden, batched}) {
        for (const auto &result : results) {
            if (result.name == stalled) {
                EXPECT_TRUE(result.errored);
                ASSERT_NE(result.finalFailure(), nullptr);
                EXPECT_EQ(result.finalFailure()->category,
                          FailureCategory::Deadline);
            } else if (result.name == thrown) {
                EXPECT_TRUE(result.errored);
                ASSERT_NE(result.finalFailure(), nullptr);
                EXPECT_EQ(result.finalFailure()->category,
                          FailureCategory::Injected);
            } else {
                EXPECT_FALSE(result.errored) << result.name;
            }
        }
    }

    // Failure metadata (not just the verdict) must match: the op
    // count at which the watchdog fired is part of the record.
    for (std::size_t i = 0; i < golden.size(); ++i) {
        ASSERT_EQ(golden[i].failures.size(), batched[i].failures.size());
        for (std::size_t f = 0; f < golden[i].failures.size(); ++f) {
            EXPECT_EQ(golden[i].failures[f].category,
                      batched[i].failures[f].category);
            EXPECT_EQ(golden[i].failures[f].message,
                      batched[i].failures[f].message)
                << golden[i].name;
        }
    }
}

TEST(HotPathGolden, RetriesRecoverIdenticallyAcrossLanes)
{
    // A transient fault on attempt 0 recovers on attempt 1 with the
    // perturbed seed; the recovered counters must not depend on the
    // lane either.
    const auto names = pairNames(InputSize::Test);
    const std::string &flaky = names[2];

    const auto sweep = [&](RunnerOptions options) {
        ScriptedFaultInjector injector;
        injector.set(flaky, 0, FaultInjector::Action::Throw);
        options.faultInjector = &injector;
        options.maxRetries = 1;
        return SuiteRunner(options).runAll(workloads::cpu2006Suite(),
                                           InputSize::Test);
    };

    const auto golden = sweep(referenceOptions());
    const auto batched = sweep(fastOptions(1, 64));
    expectResultsIdentical(golden, batched);
    for (const auto &result : golden)
        if (result.name == flaky)
            EXPECT_TRUE(result.recovered());
}

} // namespace
} // namespace suite
} // namespace spec17
