/**
 * @file
 * Sharded-campaign and journal-integrity tests: the shard partition,
 * the golden shard/merge round trip (merged shards byte-identical to
 * the unsharded journal), the journal-corruption matrix (torn tail,
 * bit flip, truncated header, duplicate record, overlapping and
 * divergent shards), resume refusal on config mismatch, and graceful
 * degradation under injected journal-I/O faults.
 */

#include "suite/journal.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "suite/fault_injection.hh"
#include "suite/result_cache.hh"

namespace spec17 {
namespace suite {
namespace {

using workloads::InputSize;

RunnerOptions
fastOptions()
{
    RunnerOptions options;
    options.sampleOps = 20000;
    options.warmupOps = 5000;
    return options;
}

std::string
tempBase(const char *tag)
{
    return std::string(::testing::TempDir()) + "/spec17_shard_" + tag;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
}

/** Offset just past the @p n-th newline of @p content. */
std::size_t
afterNewline(const std::string &content, std::size_t n)
{
    std::size_t offset = 0;
    for (std::size_t i = 0; i < n; ++i)
        offset = content.find('\n', offset) + 1;
    return offset;
}

/** Results must agree pair by pair (same sweep, different route). */
void
expectSameResults(const std::vector<PairResult> &got,
                  const std::vector<PairResult> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].name, want[i].name);
        EXPECT_EQ(got[i].errored, want[i].errored);
        EXPECT_DOUBLE_EQ(got[i].wallCycles, want[i].wallCycles);
        EXPECT_EQ(got[i].counters.get(
                      counters::PerfEvent::InstRetiredAny),
                  want[i].counters.get(
                      counters::PerfEvent::InstRetiredAny));
    }
}

// --- synthetic journals for the corruption matrix ------------------

const char *const kColumns = "name,value,record_hash";

std::string
fp(const char *campaign)
{
    return hex16(fnv1a(campaign));
}

std::string
record(const std::string &config, const std::string &payload)
{
    return payload + "," + recordHash(config, payload);
}

std::string
syntheticJournal(const std::string &config, unsigned k, unsigned n,
                 const std::vector<std::string> &payloads)
{
    JournalHeader header;
    header.configFingerprint = config;
    header.pairsDigest = fp("pairs");
    header.shardIndex = k;
    header.shardCount = n;
    std::string content = header.serialize() + "\n" + kColumns + "\n";
    for (const auto &payload : payloads)
        content += record(config, payload) + "\n";
    return content;
}

// --- shard partition -----------------------------------------------

TEST(ShardSpec, ParsesValidAndRejectsMalformedLabels)
{
    const auto two_of_four = ShardSpec::parse("2/4");
    ASSERT_TRUE(two_of_four.has_value());
    EXPECT_EQ(two_of_four->index, 2u);
    EXPECT_EQ(two_of_four->count, 4u);
    EXPECT_TRUE(two_of_four->active());
    EXPECT_EQ(two_of_four->label(), "2/4");

    const auto whole = ShardSpec::parse("1/1");
    ASSERT_TRUE(whole.has_value());
    EXPECT_FALSE(whole->active());

    for (const char *bad : {"", "3", "0/4", "5/4", "3/0", "a/b",
                            "1/2/3", "-1/4", "1/ 4"})
        EXPECT_FALSE(ShardSpec::parse(bad).has_value()) << bad;
}

TEST(ShardSpec, RoundRobinPartitionCoversEveryPairExactlyOnce)
{
    const auto pairs = enumeratePairs(workloads::cpu2006Suite(),
                                      InputSize::Test);
    ASSERT_EQ(pairs.size(), 29u);
    std::vector<std::string> seen;
    for (unsigned k = 1; k <= 4; ++k) {
        const auto slice = shardPairs(pairs, {k, 4});
        // Round robin balances the slice sizes to within one pair.
        EXPECT_EQ(slice.size(), k == 1 ? 8u : 7u);
        for (std::size_t j = 0; j < slice.size(); ++j) {
            // Record j of shard K/N is canonical pair j*N + (K-1) --
            // the arithmetic the merge relies on.
            EXPECT_EQ(slice[j].displayName(),
                      pairs[j * 4 + (k - 1)].displayName());
            seen.push_back(slice[j].displayName());
        }
    }
    EXPECT_EQ(seen.size(), pairs.size());

    const auto whole = shardPairs(pairs, {1, 1});
    EXPECT_EQ(whole.size(), pairs.size());
}

// --- golden round trip ---------------------------------------------

TEST(ShardMerge, MergedShardsReproduceUnshardedJournalByteExact)
{
    RunnerOptions options = fastOptions();
    options.jobs = 8;
    SuiteRunner runner(options);
    const auto &suite = workloads::cpu2006Suite();

    // The canonical journal: one unsharded parallel sweep.
    ResultCache canonical(tempBase("golden_canonical"));
    canonical.invalidate();
    const auto full = canonical.runOrLoad(runner, suite,
                                          InputSize::Test);
    const std::string canonical_file =
        canonical.journalFile(suite, InputSize::Test);
    ASSERT_EQ(full.size(), 29u);

    // Four shards, deliberately run out of order: shard identity, not
    // execution order, determines the merge result.
    const std::string base = tempBase("golden_shards");
    std::vector<std::string> shard_files(4);
    std::size_t sliced = 0;
    for (unsigned k : {3u, 1u, 4u, 2u}) {
        ResultCache cache(base);
        cache.setShard({k, 4});
        cache.invalidate();
        const auto slice = cache.runOrLoad(runner, suite,
                                           InputSize::Test);
        sliced += slice.size();
        shard_files[k - 1] = cache.journalFile(suite, InputSize::Test);
        EXPECT_NE(shard_files[k - 1], canonical_file);
    }
    EXPECT_EQ(sliced, full.size());

    // Merge in shuffled input order; the outcome must not care.
    const std::string merged = tempBase("golden_merged") + ".csv";
    const auto outcome = mergeJournals(
        {shard_files[2], shard_files[0], shard_files[3],
         shard_files[1]},
        merged);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    EXPECT_EQ(outcome.shardsMerged, 4u);
    EXPECT_EQ(outcome.recordsWritten, full.size());
    EXPECT_EQ(outcome.recordsDropped, 0u);
    EXPECT_EQ(fileBytes(merged), fileBytes(canonical_file));
    EXPECT_FALSE(fileBytes(merged).empty());

    // A duplicate byte-identical shard input is tolerated.
    const auto again = mergeJournals(
        {shard_files[0], shard_files[1], shard_files[2],
         shard_files[3], shard_files[1]},
        merged);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.shardsMerged, 4u);
    EXPECT_EQ(fileBytes(merged), fileBytes(canonical_file));

    // The merged journal is a full cache hit for an unsharded run.
    ResultCache reload(tempBase("golden_canonical"));
    const auto replayed = reload.runOrLoad(runner, suite,
                                           InputSize::Test);
    ASSERT_EQ(replayed.size(), full.size());
    EXPECT_TRUE(replayed.front().replayed);

    canonical.invalidate();
    std::remove(merged.c_str());
    for (unsigned k = 1; k <= 4; ++k)
        std::remove(shard_files[k - 1].c_str());
}

// --- corruption matrix ---------------------------------------------

TEST(JournalFsck, TornTailIsQuarantinedAndRepairDropsOnlyTheSuffix)
{
    const std::string path = tempBase("torn") + ".csv";
    const std::string config = fp("campaign-a");
    const std::string intact = syntheticJournal(
        config, 1, 1, {"p01,42", "p02,43", "p03,44"});
    // Tear mid-way through the third record (a crash mid-append).
    writeFile(path, intact.substr(0, afterNewline(intact, 4) + 4));

    const auto scan = scanJournal(path);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_TRUE(scan.corrupt);
    EXPECT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.corruptRecord, 2u);
    EXPECT_NE(scan.corruptReason.find("hash"), std::string::npos);
    EXPECT_FALSE(scan.clean());

    std::string error;
    ASSERT_TRUE(repairJournal(path, error)) << error;
    const auto repaired = scanJournal(path);
    EXPECT_TRUE(repaired.clean());
    EXPECT_EQ(repaired.records.size(), 2u);
    // Repair keeps exactly the valid prefix, byte for byte.
    EXPECT_EQ(fileBytes(path), intact.substr(0, afterNewline(intact, 4)));
    std::remove(path.c_str());
}

TEST(JournalFsck, MidFileBitFlipIsQuarantinedByTheRecordHash)
{
    const std::string path = tempBase("bitflip") + ".csv";
    const std::string config = fp("campaign-a");
    std::string content = syntheticJournal(
        config, 1, 1, {"p01,42", "p02,43", "p03,44"});
    // Flip one bit inside the second record's payload.
    const std::size_t offset = afterNewline(content, 3) + 1;
    content[offset] = static_cast<char>(content[offset] ^ 0x04);
    writeFile(path, content);

    const auto scan = scanJournal(path);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_TRUE(scan.corrupt);
    EXPECT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.corruptRecord, 1u);
    EXPECT_NE(scan.corruptReason.find("hash mismatch"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(JournalFsck, TruncatedHeaderIsUnrepairable)
{
    const std::string path = tempBase("header") + ".csv";
    const std::string config = fp("campaign-a");
    const std::string intact =
        syntheticJournal(config, 1, 1, {"p01,42"});
    writeFile(path, intact.substr(0, 10));

    const auto scan = scanJournal(path);
    EXPECT_TRUE(scan.fileOk);
    EXPECT_FALSE(scan.headerOk);
    EXPECT_FALSE(scan.headerError.empty());

    std::string error;
    EXPECT_FALSE(repairJournal(path, error));
    EXPECT_NE(error.find("unrepairable"), std::string::npos);

    // A legacy (v1) journal -- a bare fingerprint line -- is equally
    // untrusted: no campaign header, no verification.
    writeFile(path, config + "\nname,value\np01,42\n");
    const auto legacy = scanJournal(path);
    EXPECT_FALSE(legacy.headerOk);
    EXPECT_NE(legacy.headerError.find("legacy"), std::string::npos);
    std::remove(path.c_str());
}

TEST(JournalFsck, DuplicateRecordIsQuarantined)
{
    const std::string path = tempBase("dup") + ".csv";
    const std::string config = fp("campaign-a");
    writeFile(path, syntheticJournal(
                        config, 1, 1, {"p01,42", "p02,43", "p01,42"}));

    const auto scan = scanJournal(path);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_TRUE(scan.corrupt);
    EXPECT_EQ(scan.records.size(), 2u);
    EXPECT_NE(scan.corruptReason.find("duplicate record"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(JournalMerge, RefusesCorruptInputsAndPointsAtFsck)
{
    const std::string good = tempBase("mc_good") + ".csv";
    const std::string bad = tempBase("mc_bad") + ".csv";
    const std::string out = tempBase("mc_out") + ".csv";
    const std::string config = fp("campaign-a");
    writeFile(good, syntheticJournal(config, 1, 2, {"p01,42"}));
    const std::string intact =
        syntheticJournal(config, 2, 2, {"p02,43"});
    writeFile(bad, intact.substr(0, intact.size() - 5));

    const auto outcome = mergeJournals({good, bad}, out);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("fsck"), std::string::npos);
    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(JournalMerge, RefusesShardsFromDifferentCampaigns)
{
    const std::string a = tempBase("camp_a") + ".csv";
    const std::string b = tempBase("camp_b") + ".csv";
    const std::string out = tempBase("camp_out") + ".csv";
    writeFile(a, syntheticJournal(fp("campaign-a"), 1, 2, {"p01,42"}));
    writeFile(b, syntheticJournal(fp("campaign-b"), 2, 2, {"p02,43"}));

    const auto outcome = mergeJournals({a, b}, out);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("different campaigns"),
              std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(JournalMerge, DetectsDivergentDuplicateShards)
{
    const std::string a = tempBase("div_a") + ".csv";
    const std::string b = tempBase("div_b") + ".csv";
    const std::string out = tempBase("div_out") + ".csv";
    const std::string config = fp("campaign-a");
    writeFile(a, syntheticJournal(config, 1, 2, {"p01,42", "p03,44"}));
    writeFile(b, syntheticJournal(config, 1, 2, {"p01,42", "p03,99"}));

    const auto outcome = mergeJournals({a, b}, out);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("divergent duplicate"),
              std::string::npos);
    EXPECT_NE(outcome.error.find("record 1"), std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(JournalMerge, DetectsOverlappingShards)
{
    const std::string a = tempBase("ovl_a") + ".csv";
    const std::string b = tempBase("ovl_b") + ".csv";
    const std::string out = tempBase("ovl_out") + ".csv";
    const std::string config = fp("campaign-a");
    // Pair p01 claimed at canonical index 0 (record 0 of shard 1/2)
    // and again at canonical index 1 (record 0 of shard 2/2).
    writeFile(a, syntheticJournal(config, 1, 2, {"p01,42"}));
    writeFile(b, syntheticJournal(config, 2, 2, {"p01,42"}));

    const auto outcome = mergeJournals({a, b}, out);
    EXPECT_FALSE(outcome.ok);
    EXPECT_NE(outcome.error.find("overlapping shards"),
              std::string::npos);
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(JournalMerge, GapFailsUnlessPartialMergeIsRequested)
{
    const std::string a = tempBase("gap_a") + ".csv";
    const std::string b = tempBase("gap_b") + ".csv";
    const std::string out = tempBase("gap_out") + ".csv";
    const std::string config = fp("campaign-a");
    // Shard 1/2 finished 3 pairs (canonical 0, 2, 4); shard 2/2 only
    // 1 (canonical 1). Canonical 3 is a gap.
    writeFile(a, syntheticJournal(config, 1, 2,
                                  {"p01,42", "p03,44", "p05,46"}));
    writeFile(b, syntheticJournal(config, 2, 2, {"p02,43"}));

    const auto strict = mergeJournals({a, b}, out);
    EXPECT_FALSE(strict.ok);
    EXPECT_NE(strict.error.find("gap at canonical record 3"),
              std::string::npos);
    EXPECT_NE(strict.error.find("2/2"), std::string::npos);

    const auto partial = mergeJournals({a, b}, out,
                                       /*allow_partial=*/true);
    ASSERT_TRUE(partial.ok) << partial.error;
    EXPECT_EQ(partial.recordsWritten, 3u);
    EXPECT_EQ(partial.recordsDropped, 1u);
    const auto scan = scanJournal(out);
    EXPECT_TRUE(scan.clean());
    ASSERT_EQ(scan.names.size(), 3u);
    EXPECT_EQ(scan.names[0], "p01");
    EXPECT_EQ(scan.names[1], "p02");
    EXPECT_EQ(scan.names[2], "p03");
    EXPECT_EQ(scan.header.shardLabel(), "1/1");
    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(out.c_str());
}

// --- resume safety -------------------------------------------------

TEST(ResultCacheV2, ResumeRefusesJournalFromAnotherConfig)
{
    const std::string base = tempBase("resume_mismatch");
    const auto &suite = workloads::cpu2006Suite();
    SuiteRunner original(fastOptions());
    ResultCache cache(base);
    cache.invalidate();
    cache.runOrLoad(original, suite, InputSize::Test);

    RunnerOptions changed = fastOptions();
    changed.sampleOps = 30000;
    SuiteRunner other(changed);
    ResultCache resuming(base, /*resume=*/true);
    EXPECT_THROW(resuming.runOrLoad(other, suite, InputSize::Test),
                 JournalConfigMismatchError);
    try {
        resuming.runOrLoad(other, suite, InputSize::Test);
    } catch (const JournalConfigMismatchError &e) {
        EXPECT_NE(std::string(e.what()).find("refusing to resume"),
                  std::string::npos);
    }

    // Without --resume the mismatch is an ordinary miss: the sweep
    // recomputes and overwrites.
    ResultCache plain(base);
    const auto rerun = plain.runOrLoad(other, suite, InputSize::Test);
    EXPECT_EQ(rerun.size(), 29u);
    EXPECT_FALSE(rerun.front().replayed);
    cache.invalidate();
}

// --- journal-I/O fault injection -----------------------------------

TEST(JournalIoFaults, EnospcDemotesToWarnAndContinue)
{
    const std::string base = tempBase("enospc");
    const auto &suite = workloads::cpu2006Suite();
    SuiteRunner runner(fastOptions());

    ScriptedJournalIoFaults faults;
    faults.enospcFrom(0);
    ResultCache cache(base);
    cache.invalidate();
    cache.setIoFaults(&faults);
    const auto results = cache.runOrLoad(runner, suite,
                                         InputSize::Test);
    // The sweep still returns every result; only persistence is lost.
    EXPECT_EQ(results.size(), 29u);
    EXPECT_FALSE(
        scanJournal(cache.journalFile(suite, InputSize::Test)).fileOk);
    // One failed quiet commit demotes the rest of the sweep to
    // memory-only; the loud final commit is still attempted.
    EXPECT_EQ(faults.writesConsulted(), 2u);

    // With the fault gone the next run simulates afresh and persists.
    cache.setIoFaults(nullptr);
    const auto rerun = cache.runOrLoad(runner, suite, InputSize::Test);
    expectSameResults(rerun, results);
    EXPECT_TRUE(
        scanJournal(cache.journalFile(suite, InputSize::Test)).clean());
    cache.invalidate();
}

TEST(JournalIoFaults, TornWriteIsQuarantinedAndRecomputedOnResume)
{
    const auto &suite = workloads::cpu2006Suite();
    SuiteRunner runner(fastOptions());

    // Reference run: the clean journal bytes (deterministic).
    ResultCache reference(tempBase("torn_ref"));
    reference.invalidate();
    const auto clean = reference.runOrLoad(runner, suite,
                                           InputSize::Test);
    const std::string clean_bytes =
        fileBytes(reference.journalFile(suite, InputSize::Test));
    ASSERT_FALSE(clean_bytes.empty());
    // Keep the header, the column header, 4 records, and a torn
    // fragment of record 5.
    const std::size_t keep = afterNewline(clean_bytes, 6) + 20;

    const std::string base = tempBase("torn");
    ScriptedJournalIoFaults faults;
    // 29 quiet per-pair commits (0..28) succeed; the final loud
    // commit (index 29) is the one a power cut tears.
    faults.tornWriteAt(29, keep);
    ResultCache cache(base);
    cache.invalidate();
    cache.setIoFaults(&faults);
    const auto results = cache.runOrLoad(runner, suite,
                                         InputSize::Test);
    expectSameResults(results, clean);

    const std::string file = cache.journalFile(suite, InputSize::Test);
    const auto scan = scanJournal(file);
    EXPECT_TRUE(scan.headerOk);
    EXPECT_TRUE(scan.corrupt);
    EXPECT_EQ(scan.records.size(), 4u);

    // Resume: the 4 committed records replay, the damaged suffix is
    // recomputed, and the final commit heals the journal completely.
    ResultCache resumed(base, /*resume=*/true);
    const auto recovered = resumed.runOrLoad(runner, suite,
                                             InputSize::Test);
    expectSameResults(recovered, clean);
    std::size_t replays = 0;
    for (const auto &result : recovered)
        replays += result.replayed ? 1 : 0;
    EXPECT_EQ(replays, 4u);
    EXPECT_EQ(fileBytes(file), clean_bytes);

    reference.invalidate();
    resumed.invalidate();
}

TEST(JournalIoFaults, ShortReadAndBitFlipOnReopenNeverYieldGarbage)
{
    const std::string base = tempBase("reopen");
    const auto &suite = workloads::cpu2006Suite();
    SuiteRunner runner(fastOptions());
    ResultCache cache(base);
    cache.invalidate();
    const auto clean = cache.runOrLoad(runner, suite, InputSize::Test);
    const std::string file = cache.journalFile(suite, InputSize::Test);
    const std::string clean_bytes = fileBytes(file);

    // Short read: only part of record 5 arrives; the prefix replays,
    // the rest re-simulates, results are identical.
    {
        ScriptedJournalIoFaults faults;
        faults.shortReadNext(afterNewline(clean_bytes, 6) + 20);
        ResultCache resumed(base, /*resume=*/true);
        resumed.setIoFaults(&faults);
        const auto results = resumed.runOrLoad(runner, suite,
                                               InputSize::Test);
        expectSameResults(results, clean);
        std::size_t replays = 0;
        for (const auto &result : results)
            replays += result.replayed ? 1 : 0;
        EXPECT_EQ(replays, 4u);
        EXPECT_EQ(faults.readsConsulted(), 1u);
    }

    // Bit flip inside record 2: the hash catches it, records 0-1
    // replay, everything from the flip on re-simulates.
    {
        ScriptedJournalIoFaults faults;
        faults.bitFlipNext(afterNewline(clean_bytes, 4) + 10, 2);
        ResultCache resumed(base, /*resume=*/true);
        resumed.setIoFaults(&faults);
        const auto results = resumed.runOrLoad(runner, suite,
                                               InputSize::Test);
        expectSameResults(results, clean);
        std::size_t replays = 0;
        for (const auto &result : results)
            replays += result.replayed ? 1 : 0;
        EXPECT_EQ(replays, 2u);
    }

    // Bit flip inside the campaign header: nothing is trusted, the
    // whole sweep re-simulates -- still correct, never garbage.
    {
        ScriptedJournalIoFaults faults;
        faults.bitFlipNext(2, 0);
        ResultCache resumed(base, /*resume=*/true);
        resumed.setIoFaults(&faults);
        const auto results = resumed.runOrLoad(runner, suite,
                                               InputSize::Test);
        expectSameResults(results, clean);
        for (const auto &result : results)
            EXPECT_FALSE(result.replayed);
    }
    // Every recovery path ends with the journal healed on disk.
    EXPECT_EQ(fileBytes(file), clean_bytes);
    cache.invalidate();
}

} // namespace
} // namespace suite
} // namespace spec17
