#include "suite/runner.hh"

#include <gtest/gtest.h>

#include <limits>

namespace spec17 {
namespace suite {
namespace {

using counters::PerfEvent;
using workloads::AppInputPair;
using workloads::InputSize;

RunnerOptions
fastOptions()
{
    RunnerOptions options;
    options.sampleOps = 200000;
    options.warmupOps = 50000;
    return options;
}

AppInputPair
pairFor(const std::string &name, InputSize size = InputSize::Ref,
        unsigned input = 0)
{
    return {&workloads::findProfile(workloads::cpu2017Suite(), name),
            size, input};
}

TEST(Runner, ProducesPlausibleCountersForSingleThreadPair)
{
    SuiteRunner runner(fastOptions());
    const PairResult result = runner.runPair(pairFor("505.mcf_r"));
    EXPECT_EQ(result.name, "505.mcf_r");
    EXPECT_FALSE(result.errored);
    const auto instr = result.counters.get(PerfEvent::InstRetiredAny);
    EXPECT_NEAR(double(instr), 200000.0, 2000.0);
    EXPECT_GT(result.ipc(), 0.1);
    EXPECT_LT(result.ipc(), 4.0);
    EXPECT_GT(result.wallCycles, 0.0);
}

TEST(Runner, MultiThreadPairAggregatesThreads)
{
    SuiteRunner runner(fastOptions());
    const PairResult result = runner.runPair(pairFor("619.lbm_s"));
    const auto instr = result.counters.get(PerfEvent::InstRetiredAny);
    // 4 threads x (sample+warmup)/4 - warmup/4 each ~= sampleOps.
    EXPECT_NEAR(double(instr), 200000.0, 8000.0);
    EXPECT_GT(result.ipc(), 0.01);
}

TEST(Runner, PaperScaleQuantitiesAreReported)
{
    SuiteRunner runner(fastOptions());
    const PairResult result = runner.runPair(pairFor("505.mcf_r"));
    EXPECT_DOUBLE_EQ(result.instrBillions, 1000.0);
    EXPECT_GT(result.seconds, 10.0);     // a real SPEC run is minutes
    EXPECT_LT(result.seconds, 100000.0);
    // Declared footprints survive into the counters.
    const double rss_mib =
        double(result.counters.get(PerfEvent::RssBytes)) / (1 << 20);
    EXPECT_NEAR(rss_mib, 269.5, 1.0);
}

TEST(Runner, ErroredPairsAreFlaggedButStillRun)
{
    SuiteRunner runner(fastOptions());
    const PairResult result = runner.runPair(pairFor("627.cam4_s"));
    EXPECT_TRUE(result.errored);
    EXPECT_GT(result.counters.get(PerfEvent::InstRetiredAny), 0u);
}

TEST(Runner, DeterministicAcrossRunnerInstances)
{
    SuiteRunner a(fastOptions());
    SuiteRunner b(fastOptions());
    const PairResult ra = a.runPair(pairFor("541.leela_r"));
    const PairResult rb = b.runPair(pairFor("541.leela_r"));
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto event = static_cast<PerfEvent>(e);
        EXPECT_EQ(ra.counters.get(event), rb.counters.get(event))
            << perfEventName(event);
    }
    EXPECT_DOUBLE_EQ(ra.seconds, rb.seconds);
}

TEST(Runner, InputsOfOneAppDifferButModestly)
{
    SuiteRunner runner(fastOptions());
    const PairResult in1 =
        runner.runPair(pairFor("502.gcc_r", InputSize::Ref, 0));
    const PairResult in2 =
        runner.runPair(pairFor("502.gcc_r", InputSize::Ref, 1));
    EXPECT_NE(in1.counters.get(PerfEvent::MemUopsRetiredAllLoads),
              in2.counters.get(PerfEvent::MemUopsRetiredAllLoads));
    EXPECT_NEAR(in1.ipc(), in2.ipc(), in1.ipc() * 0.2);
}

TEST(Runner, TestInputsRunFasterThanRef)
{
    SuiteRunner runner(fastOptions());
    const PairResult test =
        runner.runPair(pairFor("505.mcf_r", InputSize::Test));
    const PairResult ref =
        runner.runPair(pairFor("505.mcf_r", InputSize::Ref));
    EXPECT_LT(test.seconds, ref.seconds);
    EXPECT_LT(test.instrBillions, ref.instrBillions);
}

TEST(Runner, RunAllCoversEveryPair)
{
    SuiteRunner runner(fastOptions());
    const auto results =
        runner.runAll(workloads::cpu2006Suite(), InputSize::Ref);
    EXPECT_EQ(results.size(), 29u);
}

TEST(Runner, RetryBackoffClampsExponentAndDelay)
{
    // Doubling follows 2^(attempt-1) while it fits...
    EXPECT_EQ(retryBackoffDelayMs(100, 0), 0u);
    EXPECT_EQ(retryBackoffDelayMs(100, 1), 100u);
    EXPECT_EQ(retryBackoffDelayMs(100, 2), 200u);
    EXPECT_EQ(retryBackoffDelayMs(100, 5), 1600u);
    EXPECT_EQ(retryBackoffDelayMs(0, 7), 0u);
    // ...then caps at the ceiling instead of growing without bound.
    EXPECT_EQ(retryBackoffDelayMs(100, 10), 51200u);
    EXPECT_EQ(retryBackoffDelayMs(100, 11), kMaxBackoffDelayMs);
    EXPECT_EQ(retryBackoffDelayMs(1, 16), 32768u);
    EXPECT_EQ(retryBackoffDelayMs(1, 17), kMaxBackoffDelayMs);
    // A retry budget far past the exponent clamp -- where the naive
    // `base << (attempt - 1)` is undefined behaviour -- still yields
    // the same finite, capped delay.
    EXPECT_EQ(retryBackoffDelayMs(1, 100),
              retryBackoffDelayMs(1, 17));
    EXPECT_EQ(retryBackoffDelayMs(100, 1000), kMaxBackoffDelayMs);
    // Huge bases cannot overflow the comparison either.
    EXPECT_EQ(retryBackoffDelayMs(
                  std::numeric_limits<std::uint64_t>::max(), 64),
              kMaxBackoffDelayMs);
}

TEST(Runner, ConfigKeyReflectsOptions)
{
    SuiteRunner a(fastOptions());
    RunnerOptions other = fastOptions();
    other.sampleOps *= 2;
    SuiteRunner b(other);
    EXPECT_NE(a.configKey(), b.configKey());
    SuiteRunner c(fastOptions());
    EXPECT_EQ(a.configKey(), c.configKey());
}

TEST(Runner, ConfigKeyCoversEveryUarchKnob)
{
    // Every semantic microarchitecture knob must change the
    // result-cache config key, or stale journals would replay results
    // from a different machine. Each mutation below is applied on top
    // of whatever knob enables it (describe() prints conditional
    // sections), and must change the key.
    const std::string base = SuiteRunner(fastOptions()).configKey();

    const auto keyOf = [](RunnerOptions options) {
        return SuiteRunner(options).configKey();
    };

    RunnerOptions tage = fastOptions();
    tage.system.branchPredictor = "tage";
    const std::string tage_key = keyOf(tage);
    EXPECT_NE(tage_key, base);
    tage.system.tage.historyTables = 6;
    EXPECT_NE(keyOf(tage), tage_key);

    RunnerOptions stream = fastOptions();
    stream.system.hierarchy.prefetcher = "stream";
    const std::string stream_key = keyOf(stream);
    EXPECT_NE(stream_key, base);
    stream.system.hierarchy.streamDegree = 8;
    const std::string degree_key = keyOf(stream);
    EXPECT_NE(degree_key, stream_key);
    stream.system.hierarchy.streamDistance = 32;
    EXPECT_NE(keyOf(stream), degree_key);

    RunnerOptions l2pf = fastOptions();
    l2pf.system.hierarchy.l2Prefetcher = "stream";
    EXPECT_NE(keyOf(l2pf), base);
    EXPECT_NE(keyOf(l2pf), stream_key); // slot placement matters

    RunnerOptions waypred = fastOptions();
    waypred.system.hierarchy.l1d.wayPredictor = sim::WayPredictor::Mru;
    const std::string mru_key = keyOf(waypred);
    EXPECT_NE(mru_key, base);
    waypred.system.hierarchy.l1d.wayPredictor = sim::WayPredictor::Utag;
    const std::string utag_key = keyOf(waypred);
    EXPECT_NE(utag_key, mru_key);
    waypred.system.hierarchy.l1d.wayMispredictPenalty = 5;
    EXPECT_NE(keyOf(waypred), utag_key);
}

} // namespace
} // namespace suite
} // namespace spec17
