/**
 * @file
 * Parallel sweep determinism: a sweep on N workers must be
 * indistinguishable from a sequential one. Golden tests pin the
 * contract -- byte-identical journals, identical telemetry series,
 * observer callbacks in canonical pair order -- and crash-resume
 * keeps working when the interrupted sweep ran on a worker pool.
 */

#include "suite/result_cache.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "telemetry/sink.hh"

namespace spec17 {
namespace suite {
namespace {

using workloads::InputSize;

RunnerOptions
fastOptions(unsigned jobs)
{
    RunnerOptions options;
    options.sampleOps = 60000;
    options.warmupOps = 20000;
    options.jobs = jobs;
    return options;
}

std::string
tempBase(const char *tag)
{
    return std::string(::testing::TempDir()) + "/spec17_par_" + tag;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<std::string>
pairNames(InputSize size)
{
    std::vector<std::string> names;
    for (const auto &pair :
         enumeratePairs(workloads::cpu2006Suite(), size))
        names.push_back(pair.displayName());
    return names;
}

void
expectResultsIdentical(const std::vector<PairResult> &a,
                       const std::vector<PairResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].errored, b[i].errored) << a[i].name;
        EXPECT_EQ(a[i].attempts, b[i].attempts) << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].wallCycles, b[i].wallCycles) << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].seconds, b[i].seconds) << a[i].name;
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(a[i].counters.get(event), b[i].counters.get(event))
                << a[i].name << " " << perfEventName(event);
        }
    }
}

TEST(ParallelSweep, ResultsMatchSequentialAtAnyJobCount)
{
    SuiteRunner sequential(fastOptions(1));
    SuiteRunner parallel(fastOptions(8));
    const auto golden =
        sequential.runAll(workloads::cpu2006Suite(), InputSize::Test);
    const auto pooled =
        parallel.runAll(workloads::cpu2006Suite(), InputSize::Test);
    expectResultsIdentical(golden, pooled);
}

TEST(ParallelSweep, ZeroJobsMeansHardwareConcurrency)
{
    SuiteRunner sequential(fastOptions(1));
    SuiteRunner parallel(fastOptions(0));
    const auto golden =
        sequential.runAll(workloads::cpu2006Suite(), InputSize::Test);
    const auto pooled =
        parallel.runAll(workloads::cpu2006Suite(), InputSize::Test);
    expectResultsIdentical(golden, pooled);
}

TEST(ParallelSweep, ConfigKeyIgnoresJobs)
{
    // Parallelism must not invalidate caches: a journal written at
    // --jobs=1 replays at --jobs=8 and vice versa.
    SuiteRunner sequential(fastOptions(1));
    SuiteRunner parallel(fastOptions(8));
    EXPECT_EQ(sequential.configKey(), parallel.configKey());
}

TEST(ParallelSweep, JournalBytesAreIdenticalAcrossJobCounts)
{
    const auto &suite = workloads::cpu2006Suite();

    const std::string seq_base = tempBase("golden_seq");
    ResultCache seq_cache(seq_base);
    seq_cache.invalidate();
    seq_cache.runOrLoad(SuiteRunner(fastOptions(1)), suite,
                        InputSize::Test);

    const std::string par_base = tempBase("golden_par");
    ResultCache par_cache(par_base);
    par_cache.invalidate();
    par_cache.runOrLoad(SuiteRunner(fastOptions(8)), suite,
                        InputSize::Test);

    const std::string seq_bytes =
        fileBytes(seq_base + ".cpu2006.test.csv");
    ASSERT_FALSE(seq_bytes.empty());
    EXPECT_EQ(fileBytes(par_base + ".cpu2006.test.csv"), seq_bytes);
    seq_cache.invalidate();
    par_cache.invalidate();
}

TEST(ParallelSweep, TelemetrySeriesMatchSequential)
{
    const auto &suite = workloads::cpu2006Suite();
    telemetry::MemorySink seq_sink, par_sink;

    RunnerOptions seq_options = fastOptions(1);
    seq_options.sampleIntervalOps = 20000;
    seq_options.telemetrySink = &seq_sink;
    SuiteRunner(seq_options).runAll(suite, InputSize::Test);

    RunnerOptions par_options = fastOptions(8);
    par_options.sampleIntervalOps = 20000;
    par_options.telemetrySink = &par_sink;
    SuiteRunner(par_options).runAll(suite, InputSize::Test);

    ASSERT_FALSE(seq_sink.all().empty());
    ASSERT_EQ(par_sink.all().size(), seq_sink.all().size());
    for (const auto &[name, series] : seq_sink.all()) {
        const telemetry::TimeSeries *other = par_sink.find(name);
        ASSERT_NE(other, nullptr) << name;
        std::ostringstream seq_csv, par_csv;
        telemetry::renderSeriesCsv(series, seq_csv);
        telemetry::renderSeriesCsv(*other, par_csv);
        EXPECT_EQ(par_csv.str(), seq_csv.str()) << name;
    }
}

TEST(ParallelSweep, ObserverSeesCanonicalOrderUnderParallelism)
{
    SuiteRunner runner(fastOptions(8));
    std::vector<std::string> seen_names;
    std::vector<std::size_t> seen_indices;
    const auto results = runner.runAll(
        workloads::cpu2006Suite(), InputSize::Test,
        [&](const PairResult &result, std::size_t index,
            std::size_t total) {
            // The ordered-commit drain serializes observer calls, so
            // no synchronization is needed here even at jobs=8.
            EXPECT_EQ(total, pairNames(InputSize::Test).size());
            seen_names.push_back(result.name);
            seen_indices.push_back(index);
        });

    const auto names = pairNames(InputSize::Test);
    ASSERT_EQ(seen_names.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(seen_indices[i], i);
        EXPECT_EQ(seen_names[i], names[i]);
        EXPECT_EQ(results[i].name, names[i]);
    }
}

TEST(ParallelSweep, InjectedThrowIsContainedUnderParallelism)
{
    const auto names = pairNames(InputSize::Test);
    const std::string &victim = names[names.size() / 2];

    ScriptedFaultInjector injector;
    injector.set(victim, 0, FaultInjector::Action::Throw);
    RunnerOptions options = fastOptions(4);
    options.faultInjector = &injector;
    SuiteRunner runner(options);

    const auto results =
        runner.runAll(workloads::cpu2006Suite(), InputSize::Test);
    ASSERT_EQ(results.size(), names.size());
    for (const auto &result : results) {
        if (result.name == victim) {
            EXPECT_TRUE(result.errored);
            ASSERT_NE(result.finalFailure(), nullptr);
            EXPECT_EQ(result.finalFailure()->category,
                      FailureCategory::Injected);
        } else {
            EXPECT_FALSE(result.errored) << result.name;
        }
    }
}

/** Truncates the journal at @p file to its first @p keep_rows rows. */
void
truncateJournal(const std::string &file, std::size_t keep_rows)
{
    std::ifstream in(file);
    ASSERT_TRUE(in.good());
    std::string line, kept;
    for (std::size_t i = 0; i < keep_rows + 2; ++i) {
        ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
        kept += line + "\n";
    }
    in.close();
    std::ofstream out(file, std::ios::trunc);
    out << kept;
}

TEST(ParallelSweep, ResumeMidParallelSweepIsByteIdentical)
{
    const std::string base = tempBase("resume");
    const std::string file = base + ".cpu2006.test.csv";
    const auto &suite = workloads::cpu2006Suite();

    ResultCache cache(base);
    cache.invalidate();
    const auto golden = cache.runOrLoad(SuiteRunner(fastOptions(4)),
                                        suite, InputSize::Test);
    const std::string golden_bytes = fileBytes(file);
    ASSERT_FALSE(golden_bytes.empty());

    // A parallel sweep killed after 11 journal commits leaves exactly
    // a valid prefix: the ordered-commit drain never journals pair i
    // before pairs [0, i) are on disk, worker pool or not.
    constexpr std::size_t kCompleted = 11;
    truncateJournal(file, kCompleted);

    ScriptedFaultInjector probe;
    RunnerOptions probe_options = fastOptions(4);
    probe_options.faultInjector = &probe;
    SuiteRunner probe_runner(probe_options);
    ResultCache resumed(base, /*resume=*/true);
    const auto results =
        resumed.runOrLoad(probe_runner, suite, InputSize::Test);

    // Exactly the non-replayed pairs were simulated. With jobs > 1
    // the consultation log is in completion order, so compare sets.
    const auto names = pairNames(InputSize::Test);
    ASSERT_EQ(results.size(), names.size());
    std::vector<std::string> simulated;
    for (const auto &[pair, attempt] : probe.consulted()) {
        EXPECT_EQ(attempt, 0u);
        simulated.push_back(pair);
    }
    std::vector<std::string> expected(names.begin() + kCompleted,
                                      names.end());
    std::sort(simulated.begin(), simulated.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(simulated, expected);

    EXPECT_EQ(fileBytes(file), golden_bytes);
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].name, golden[i].name);
        EXPECT_EQ(results[i].replayed, i < kCompleted);
        EXPECT_DOUBLE_EQ(results[i].seconds, golden[i].seconds);
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(results[i].counters.get(event),
                      golden[i].counters.get(event));
        }
    }
    resumed.invalidate();
}

} // namespace
} // namespace suite
} // namespace spec17
