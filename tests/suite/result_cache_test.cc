#include "suite/result_cache.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace spec17 {
namespace suite {
namespace {

using workloads::InputSize;

RunnerOptions
fastOptions()
{
    RunnerOptions options;
    options.sampleOps = 60000;
    options.warmupOps = 20000;
    return options;
}

/** Temp path unique per test to avoid cross-test pollution. */
std::string
tempBase(const char *tag)
{
    return std::string(::testing::TempDir()) + "/spec17_cache_" + tag;
}

TEST(ResultCache, RoundTripsExactCounters)
{
    const std::string base = tempBase("roundtrip");
    SuiteRunner runner(fastOptions());
    const auto &suite = workloads::cpu2006Suite();

    ResultCache cache(base);
    cache.invalidate();
    const auto fresh = cache.runOrLoad(runner, suite, InputSize::Test);
    const auto reloaded = cache.runOrLoad(runner, suite, InputSize::Test);

    ASSERT_EQ(fresh.size(), reloaded.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_EQ(fresh[i].name, reloaded[i].name);
        EXPECT_EQ(fresh[i].errored, reloaded[i].errored);
        EXPECT_DOUBLE_EQ(fresh[i].wallCycles, reloaded[i].wallCycles);
        EXPECT_DOUBLE_EQ(fresh[i].seconds, reloaded[i].seconds);
        EXPECT_EQ(fresh[i].profile, reloaded[i].profile);
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(fresh[i].counters.get(event),
                      reloaded[i].counters.get(event));
        }
    }
    cache.invalidate();
}

TEST(ResultCache, ConfigChangeInvalidates)
{
    const std::string base = tempBase("config");
    const auto &suite = workloads::cpu2006Suite();

    SuiteRunner runner_a(fastOptions());
    ResultCache cache(base);
    cache.invalidate();
    cache.runOrLoad(runner_a, suite, InputSize::Test);

    // A different configuration must not read runner_a's results:
    // the sweep reruns (detectable via differing sample counts).
    RunnerOptions other = fastOptions();
    other.sampleOps = 90000;
    SuiteRunner runner_b(other);
    const auto results = cache.runOrLoad(runner_b, suite,
                                         InputSize::Test);
    const auto instr = results.front().counters.get(
        counters::PerfEvent::InstRetiredAny);
    EXPECT_NEAR(double(instr), 90000.0, 2000.0);
    cache.invalidate();
}

TEST(ResultCache, CorruptFileFallsBackToRun)
{
    const std::string base = tempBase("corrupt");
    SuiteRunner runner(fastOptions());
    const auto &suite = workloads::cpu2006Suite();
    ResultCache cache(base);
    cache.invalidate();
    cache.runOrLoad(runner, suite, InputSize::Test);

    // Truncate the cache file.
    const std::string file = base + ".cpu2006.test.csv";
    {
        std::ofstream out(file, std::ios::trunc);
        out << "garbage\n";
    }
    const auto results = cache.runOrLoad(runner, suite, InputSize::Test);
    EXPECT_EQ(results.size(), 29u);
    cache.invalidate();
}

TEST(ResultCache, EmptyPathDisablesPersistence)
{
    SuiteRunner runner(fastOptions());
    ResultCache cache("");
    const auto results = cache.runOrLoad(
        runner, workloads::cpu2006Suite(), InputSize::Test);
    EXPECT_EQ(results.size(), 29u);
}

TEST(ResultCache, DefaultPathHonorsEnvironment)
{
    ::setenv("SPEC17_CACHE", "/tmp/custom_cache_loc", 1);
    EXPECT_EQ(ResultCache::defaultPath(), "/tmp/custom_cache_loc");
    ::unsetenv("SPEC17_CACHE");
    EXPECT_EQ(ResultCache::defaultPath(), "spec17_results");
}

} // namespace
} // namespace suite
} // namespace spec17
