/**
 * @file
 * TraceArenaStore tests: capture-once/replay-many semantics (first
 * acquire captures, later acquires hit residency), least-recently-used
 * eviction under the byte budget, uncached service of arenas larger
 * than the whole budget, and S17A spill reload across store instances.
 */

#include "suite/arena_store.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/synthetic.hh"
#include "util/units.hh"

namespace spec17 {
namespace suite {
namespace {

trace::SyntheticTraceParams
params(std::uint64_t num_ops, std::uint64_t seed)
{
    trace::SyntheticTraceParams p;
    p.numOps = num_ops;
    p.seed = seed;
    p.loadFrac = 0.25;
    p.storeFrac = 0.10;
    p.branchFrac = 0.15;
    p.regions = {
        {trace::AccessPattern::Sequential, 128 * 1024, 64, 1.0, 1.0},
    };
    return p;
}

/** Resident byte size of one captured arena at @p num_ops. */
std::uint64_t
arenaBytes(std::uint64_t num_ops)
{
    return trace::captureArena(params(num_ops, 1)).byteSize();
}

TEST(ArenaStore, FirstAcquireCapturesLaterAcquiresHit)
{
    TraceArenaStore store(64 * kMiB);
    const auto p = params(5000, 42);
    const auto first = store.acquire(p);
    ASSERT_NE(first, nullptr);
    const auto second = store.acquire(p);
    // Residency means the very same arena object, not an equal copy.
    EXPECT_EQ(first.get(), second.get());

    const TraceArenaStore::Stats stats = store.stats();
    EXPECT_EQ(stats.captures, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.residentBytes, first->byteSize());
}

TEST(ArenaStore, DistinctConfigsGetDistinctArenas)
{
    TraceArenaStore store(64 * kMiB);
    const auto a = store.acquire(params(5000, 42));
    const auto b = store.acquire(params(5000, 43));
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(store.stats().captures, 2u);
    EXPECT_EQ(store.stats().entries, 2u);
}

TEST(ArenaStore, EvictsLeastRecentlyUsedUnderBudget)
{
    // Budget fits two arenas but not three; the oldest must go.
    const std::uint64_t one = arenaBytes(5000);
    TraceArenaStore store(2 * one + one / 2);
    store.acquire(params(5000, 1));
    store.acquire(params(5000, 2));
    EXPECT_EQ(store.stats().entries, 2u);
    store.acquire(params(5000, 3));

    TraceArenaStore::Stats stats = store.stats();
    EXPECT_GE(stats.evictions, 1u);
    EXPECT_LE(stats.residentBytes, store.budgetBytes());

    // Seed 1 was the least recently used; re-acquiring it recaptures
    // (3 first captures + this one), while a recent key still hits.
    store.acquire(params(5000, 3));
    EXPECT_EQ(store.stats().hits, 1u);
    store.acquire(params(5000, 1));
    EXPECT_EQ(store.stats().captures, 4u);
}

TEST(ArenaStore, OverBudgetArenasAreServedUncached)
{
    TraceArenaStore store(1024); // smaller than any captured arena
    const auto arena = store.acquire(params(5000, 7));
    ASSERT_NE(arena, nullptr);
    EXPECT_EQ(arena->numOps, 5000u);

    const TraceArenaStore::Stats stats = store.stats();
    EXPECT_EQ(stats.captures, 1u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.residentBytes, 0u);
}

TEST(ArenaStore, SpilledArenasReloadAcrossStores)
{
    const std::string spill_dir =
        std::string(::testing::TempDir()) + "/arena_store_spill";
    const auto p = params(5000, 99);
    std::string spill_path;
    {
        TraceArenaStore store(64 * kMiB, spill_dir);
        store.acquire(p);
        EXPECT_EQ(store.stats().captures, 1u);
        spill_path =
            store.spillPathFor(trace::describeTraceParams(p));
    }

    // A fresh store with the same spill directory reloads instead of
    // recapturing, and the reloaded arena replays the same stream.
    TraceArenaStore reloaded(64 * kMiB, spill_dir);
    const auto arena = reloaded.acquire(p);
    ASSERT_NE(arena, nullptr);
    EXPECT_EQ(arena->numOps, 5000u);
    const TraceArenaStore::Stats stats = reloaded.stats();
    EXPECT_EQ(stats.captures, 0u);
    EXPECT_EQ(stats.spillLoads, 1u);
    std::remove(spill_path.c_str());
}

} // namespace
} // namespace suite
} // namespace spec17
