#include "counters/perf_event.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace counters {
namespace {

TEST(PerfEvent, NamesMatchThePaperFlags)
{
    EXPECT_EQ(perfEventName(PerfEvent::InstRetiredAny),
              "inst_retired.any");
    EXPECT_EQ(perfEventName(PerfEvent::CpuClkUnhaltedRefTsc),
              "cpu_clk_unhalted.ref_tsc");
    EXPECT_EQ(perfEventName(PerfEvent::MemUopsRetiredAllLoads),
              "mem_uops_retired.all_loads");
    EXPECT_EQ(perfEventName(PerfEvent::BrInstExecAllIndirectJumpNonCallRet),
              "br_inst_exec.all_indirect_jump_non_call_ret");
    EXPECT_EQ(perfEventName(PerfEvent::MemLoadUopsRetiredL3Miss),
              "mem_load_uops_retired.l3_miss");
}

TEST(PerfEvent, RoundTripsEveryEvent)
{
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
        const auto event = static_cast<PerfEvent>(i);
        EXPECT_EQ(perfEventFromName(perfEventName(event)), event);
    }
}

TEST(PerfEventDeathTest, UnknownNamePanics)
{
    EXPECT_DEATH(perfEventFromName("no_such.counter"), "unknown");
}

TEST(CounterSet, StartsZeroAndAccumulates)
{
    CounterSet cs;
    EXPECT_EQ(cs.get(PerfEvent::InstRetiredAny), 0u);
    cs.add(PerfEvent::InstRetiredAny);
    cs.add(PerfEvent::InstRetiredAny, 9);
    EXPECT_EQ(cs.get(PerfEvent::InstRetiredAny), 10u);
}

TEST(CounterSet, RaiseToIsARunningMax)
{
    CounterSet cs;
    cs.raiseTo(PerfEvent::RssBytes, 100);
    cs.raiseTo(PerfEvent::RssBytes, 50);
    EXPECT_EQ(cs.get(PerfEvent::RssBytes), 100u);
    cs.raiseTo(PerfEvent::RssBytes, 200);
    EXPECT_EQ(cs.get(PerfEvent::RssBytes), 200u);
}

TEST(CounterSet, AccumulateMergesAllSlots)
{
    CounterSet a, b;
    a.add(PerfEvent::InstRetiredAny, 5);
    b.add(PerfEvent::InstRetiredAny, 7);
    b.add(PerfEvent::MemUopsRetiredAllStores, 3);
    a.accumulate(b);
    EXPECT_EQ(a.get(PerfEvent::InstRetiredAny), 12u);
    EXPECT_EQ(a.get(PerfEvent::MemUopsRetiredAllStores), 3u);
}

TEST(CounterSet, DiffComputesInterval)
{
    CounterSet early, late;
    early.add(PerfEvent::InstRetiredAny, 10);
    late.add(PerfEvent::InstRetiredAny, 25);
    const CounterSet delta = late.diff(early);
    EXPECT_EQ(delta.get(PerfEvent::InstRetiredAny), 15u);
}

TEST(CounterSetDeathTest, DiffRejectsBackwardsCounters)
{
    CounterSet early, late;
    early.add(PerfEvent::UopsRetiredAll, 10);
    late.add(PerfEvent::UopsRetiredAll, 5);
    EXPECT_DEATH(late.diff(early), "went backwards");
}

} // namespace
} // namespace counters
} // namespace spec17
