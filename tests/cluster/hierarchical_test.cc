#include "cluster/hierarchical.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/random.hh"

namespace spec17 {
namespace cluster {
namespace {

using stats::Matrix;

/** Three well-separated 2-D blobs of @p per points each. */
Matrix
threeBlobs(std::size_t per, std::uint64_t seed)
{
    Rng rng(seed);
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    Matrix m(3 * per, 2);
    for (std::size_t b = 0; b < 3; ++b) {
        for (std::size_t i = 0; i < per; ++i) {
            const std::size_t r = b * per + i;
            m.at(r, 0) = centers[b][0] + 0.3 * rng.nextGaussian();
            m.at(r, 1) = centers[b][1] + 0.3 * rng.nextGaussian();
        }
    }
    return m;
}

TEST(Hierarchical, EuclideanDistance)
{
    const Matrix m = Matrix::fromRows({{0, 0}, {3, 4}});
    EXPECT_DOUBLE_EQ(euclidean(m, 0, 1), 5.0);
    EXPECT_DOUBLE_EQ(euclidean(m, 0, 0), 0.0);
}

TEST(Hierarchical, MergesClosestPairFirst)
{
    // Points at 0, 1, 10 on a line: {0,1} merge first at distance 1.
    const Matrix m = Matrix::fromRows({{0.0}, {1.0}, {10.0}});
    const Dendrogram d = agglomerate(m, Linkage::Single);
    ASSERT_EQ(d.steps().size(), 2u);
    EXPECT_EQ(d.steps()[0].left, 0u);
    EXPECT_EQ(d.steps()[0].right, 1u);
    EXPECT_DOUBLE_EQ(d.steps()[0].distance, 1.0);
    EXPECT_EQ(d.steps()[0].size, 2u);
    EXPECT_EQ(d.steps()[1].size, 3u);
}

TEST(Hierarchical, MergeDistancesAreMonotoneForReducibleLinkages)
{
    const Matrix m = threeBlobs(8, 1);
    for (Linkage linkage : {Linkage::Single, Linkage::Complete,
                            Linkage::Average, Linkage::Ward}) {
        const Dendrogram d = agglomerate(m, linkage);
        for (std::size_t i = 1; i < d.steps().size(); ++i) {
            EXPECT_GE(d.steps()[i].distance,
                      d.steps()[i - 1].distance - 1e-9)
                << linkageName(linkage) << " step " << i;
        }
    }
}

TEST(Hierarchical, CutRecoversPlantedBlobs)
{
    const std::size_t per = 10;
    const Matrix m = threeBlobs(per, 2);
    for (Linkage linkage : {Linkage::Single, Linkage::Complete,
                            Linkage::Average, Linkage::Ward}) {
        const Dendrogram d = agglomerate(m, linkage);
        const std::vector<std::size_t> labels = d.cut(3);
        // All members of a planted blob share a label, and the three
        // blobs get three distinct labels.
        std::set<std::size_t> blob_labels;
        for (std::size_t b = 0; b < 3; ++b) {
            const std::size_t expect = labels[b * per];
            blob_labels.insert(expect);
            for (std::size_t i = 1; i < per; ++i)
                EXPECT_EQ(labels[b * per + i], expect)
                    << linkageName(linkage);
        }
        EXPECT_EQ(blob_labels.size(), 3u) << linkageName(linkage);
    }
}

TEST(Hierarchical, CutExtremes)
{
    const Matrix m = threeBlobs(4, 3);
    const Dendrogram d = agglomerate(m, Linkage::Average);
    const auto all_one = d.cut(1);
    for (std::size_t label : all_one)
        EXPECT_EQ(label, 0u);
    const auto singletons = d.cut(m.rows());
    std::set<std::size_t> distinct(singletons.begin(), singletons.end());
    EXPECT_EQ(distinct.size(), m.rows());
    EXPECT_DEATH(d.cut(0), "out of");
    EXPECT_DEATH(d.cut(m.rows() + 1), "out of");
}

TEST(Hierarchical, ClustersAtPartitionsAllLeaves)
{
    const Matrix m = threeBlobs(5, 4);
    const Dendrogram d = agglomerate(m, Linkage::Ward);
    const auto groups = d.clustersAt(4);
    ASSERT_EQ(groups.size(), 4u);
    std::set<std::size_t> seen;
    for (const auto &g : groups) {
        EXPECT_FALSE(g.empty());
        EXPECT_TRUE(std::is_sorted(g.begin(), g.end()));
        for (std::size_t leaf : g) {
            EXPECT_TRUE(seen.insert(leaf).second)
                << "leaf appears twice";
        }
    }
    EXPECT_EQ(seen.size(), m.rows());
}

TEST(Hierarchical, SingleVsCompleteDifferOnChainedData)
{
    // A chain of points: single linkage chains them into one early;
    // complete linkage resists. Verify the dendrograms differ.
    Matrix chain(6, 1);
    for (std::size_t i = 0; i < 6; ++i)
        chain.at(i, 0) = static_cast<double>(i) * 1.0;
    const Dendrogram s = agglomerate(chain, Linkage::Single);
    const Dendrogram c = agglomerate(chain, Linkage::Complete);
    EXPECT_DOUBLE_EQ(s.steps().back().distance, 1.0);
    EXPECT_GT(c.steps().back().distance, 2.0);
}

TEST(Hierarchical, DeterministicAcrossRuns)
{
    const Matrix m = threeBlobs(7, 5);
    const Dendrogram a = agglomerate(m, Linkage::Average);
    const Dendrogram b = agglomerate(m, Linkage::Average);
    ASSERT_EQ(a.steps().size(), b.steps().size());
    for (std::size_t i = 0; i < a.steps().size(); ++i) {
        EXPECT_EQ(a.steps()[i].left, b.steps()[i].left);
        EXPECT_EQ(a.steps()[i].right, b.steps()[i].right);
        EXPECT_DOUBLE_EQ(a.steps()[i].distance, b.steps()[i].distance);
    }
}

TEST(Hierarchical, SinglePointDendrogram)
{
    const Matrix m = Matrix::fromRows({{1.0, 2.0}});
    const Dendrogram d = agglomerate(m, Linkage::Average);
    EXPECT_EQ(d.numLeaves(), 1u);
    EXPECT_TRUE(d.steps().empty());
    EXPECT_EQ(d.cut(1), std::vector<std::size_t>{0});
    EXPECT_EQ(d.renderAscii({"only"}), "only\n");
}

TEST(Hierarchical, AsciiDendrogramContainsEveryLabel)
{
    const Matrix m = threeBlobs(3, 6);
    const Dendrogram d = agglomerate(m, Linkage::Average);
    std::vector<std::string> labels;
    for (std::size_t i = 0; i < m.rows(); ++i)
        labels.push_back("app" + std::to_string(i));
    const std::string art = d.renderAscii(labels, 40);
    for (const auto &label : labels)
        EXPECT_NE(art.find(label), std::string::npos) << label;
    // Exactly one text line per leaf.
    EXPECT_EQ(std::count(art.begin(), art.end(), '\n'),
              static_cast<long>(m.rows()));
}

TEST(Hierarchical, LinkageNames)
{
    EXPECT_EQ(linkageName(Linkage::Single), "single");
    EXPECT_EQ(linkageName(Linkage::Complete), "complete");
    EXPECT_EQ(linkageName(Linkage::Average), "average");
    EXPECT_EQ(linkageName(Linkage::Ward), "ward");
}

} // namespace
} // namespace cluster
} // namespace spec17
