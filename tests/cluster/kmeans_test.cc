#include "cluster/kmeans.hh"

#include <gtest/gtest.h>

#include <set>

#include "util/random.hh"

namespace spec17 {
namespace cluster {
namespace {

using stats::Matrix;

Matrix
blobs(std::size_t per, std::size_t k, double spread, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(per * k, 2);
    for (std::size_t b = 0; b < k; ++b) {
        for (std::size_t i = 0; i < per; ++i) {
            m.at(b * per + i, 0) =
                30.0 * double(b) + spread * rng.nextGaussian();
            m.at(b * per + i, 1) = spread * rng.nextGaussian();
        }
    }
    return m;
}

TEST(KMeans, RecoversPlantedBlobs)
{
    const std::size_t per = 12;
    const Matrix m = blobs(per, 3, 0.5, 1);
    const KMeansResult result = kMeans(m, 3, 7);
    EXPECT_TRUE(result.converged);
    std::set<std::size_t> blob_labels;
    for (std::size_t b = 0; b < 3; ++b) {
        const std::size_t expect = result.labels[b * per];
        blob_labels.insert(expect);
        for (std::size_t i = 1; i < per; ++i)
            EXPECT_EQ(result.labels[b * per + i], expect);
    }
    EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeans, SseDecreasesWithK)
{
    const Matrix m = blobs(10, 4, 1.0, 2);
    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
        const KMeansResult result = kMeans(m, k, 3);
        EXPECT_LE(result.sse, prev + 1e-9) << "k=" << k;
        prev = result.sse;
    }
}

TEST(KMeans, KEqualsOneGivesGlobalCentroid)
{
    const Matrix m = blobs(8, 2, 0.5, 3);
    const KMeansResult result = kMeans(m, 1, 4);
    for (std::size_t label : result.labels)
        EXPECT_EQ(label, 0u);
    double mean0 = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r)
        mean0 += m.at(r, 0);
    mean0 /= double(m.rows());
    EXPECT_NEAR(result.centroids.at(0, 0), mean0, 1e-9);
}

TEST(KMeans, KEqualsNGivesZeroSse)
{
    const Matrix m = blobs(3, 2, 0.8, 4);
    const KMeansResult result = kMeans(m, m.rows(), 5);
    EXPECT_NEAR(result.sse, 0.0, 1e-9);
}

TEST(KMeans, DeterministicPerSeed)
{
    const Matrix m = blobs(9, 3, 1.5, 5);
    const KMeansResult a = kMeans(m, 3, 11);
    const KMeansResult b = kMeans(m, 3, 11);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_DOUBLE_EQ(a.sse, b.sse);
}

TEST(KMeans, EveryClusterSurvives)
{
    // Duplicated points force potential empty clusters.
    Matrix m(6, 1);
    for (std::size_t r = 0; r < 6; ++r)
        m.at(r, 0) = r < 3 ? 0.0 : 100.0;
    const KMeansResult result = kMeans(m, 4, 6);
    std::set<std::size_t> used(result.labels.begin(),
                               result.labels.end());
    EXPECT_EQ(used.size(), 4u);
}

TEST(KMeansDeathTest, RejectsBadK)
{
    const Matrix m = blobs(4, 2, 0.5, 7);
    EXPECT_DEATH(kMeans(m, 0), "k must be");
    EXPECT_DEATH(kMeans(m, m.rows() + 1), "k must be");
}

TEST(Silhouette, HighForSeparatedLowForSplitBlob)
{
    const Matrix separated = blobs(10, 2, 0.4, 8);
    const KMeansResult good = kMeans(separated, 2, 9);
    EXPECT_GT(silhouetteScore(separated, good.labels), 0.85);

    // One blob split in half: poor separation.
    const Matrix single = blobs(20, 1, 1.0, 9);
    const KMeansResult forced = kMeans(single, 2, 10);
    EXPECT_LT(silhouetteScore(single, forced.labels), 0.6);
}

TEST(Silhouette, PerfectClustersScoreNearOne)
{
    Matrix m(8, 1);
    for (std::size_t r = 0; r < 8; ++r)
        m.at(r, 0) = r < 4 ? 0.0 + 0.01 * double(r) : 1000.0 + double(r);
    std::vector<std::size_t> labels = {0, 0, 0, 0, 1, 1, 1, 1};
    EXPECT_GT(silhouetteScore(m, labels), 0.99);
}

TEST(SilhouetteDeathTest, NeedsTwoNonEmptyClusters)
{
    const Matrix m = blobs(4, 1, 0.5, 11);
    std::vector<std::size_t> one_cluster(m.rows(), 0);
    EXPECT_DEATH(silhouetteScore(m, one_cluster), "two clusters");
    std::vector<std::size_t> short_labels(m.rows() - 1, 0);
    EXPECT_DEATH(silhouetteScore(m, short_labels), "one label per");
}

} // namespace
} // namespace cluster
} // namespace spec17
