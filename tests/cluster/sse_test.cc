#include "cluster/sse.hh"

#include <gtest/gtest.h>

#include "util/random.hh"

namespace spec17 {
namespace cluster {
namespace {

using stats::Matrix;

Matrix
blobs(std::size_t per, std::size_t k, double spread, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(per * k, 2);
    for (std::size_t b = 0; b < k; ++b) {
        for (std::size_t i = 0; i < per; ++i) {
            const std::size_t r = b * per + i;
            m.at(r, 0) = 20.0 * static_cast<double>(b)
                + spread * rng.nextGaussian();
            m.at(r, 1) = spread * rng.nextGaussian();
        }
    }
    return m;
}

TEST(Sse, ZeroWhenEveryPointIsItsOwnCluster)
{
    const Matrix m = blobs(4, 2, 1.0, 1);
    std::vector<std::size_t> labels(m.rows());
    for (std::size_t i = 0; i < labels.size(); ++i)
        labels[i] = i;
    EXPECT_DOUBLE_EQ(sumSquaredError(m, labels), 0.0);
}

TEST(Sse, HandComputedTwoClusters)
{
    // Cluster 0: {0, 2} centroid 1 -> SSE 2. Cluster 1: {10} -> 0.
    const Matrix m = Matrix::fromRows({{0.0}, {2.0}, {10.0}});
    EXPECT_DOUBLE_EQ(sumSquaredError(m, {0, 0, 1}), 2.0);
}

TEST(Sse, MonotoneNonDecreasingAsClustersMerge)
{
    const Matrix m = blobs(6, 3, 0.5, 2);
    const Dendrogram d = agglomerate(m, Linkage::Ward);
    double prev = -1.0;
    for (std::size_t k = m.rows(); k >= 1; --k) {
        const double sse = sumSquaredError(m, d.cut(k));
        EXPECT_GE(sse, prev - 1e-9) << "k=" << k;
        prev = sse;
    }
}

TEST(SseDeathTest, LabelSizeMismatchPanics)
{
    const Matrix m = blobs(2, 2, 0.5, 3);
    EXPECT_DEATH(sumSquaredError(m, {0, 1}), "one label per observation");
}

TEST(Tradeoff, SweepCoversAllClusterCounts)
{
    const Matrix m = blobs(4, 3, 0.4, 4);
    const Dendrogram d = agglomerate(m, Linkage::Average);
    std::vector<double> cost(m.rows(), 1.0);
    const auto sweep = sweepTradeoff(m, d, cost);
    ASSERT_EQ(sweep.size(), m.rows());
    EXPECT_EQ(sweep.front().numClusters, 1u);
    EXPECT_EQ(sweep.back().numClusters, m.rows());
    // With unit costs, subset cost == number of clusters.
    for (const auto &tp : sweep)
        EXPECT_DOUBLE_EQ(tp.cost, static_cast<double>(tp.numClusters));
}

TEST(Tradeoff, CostUsesCheapestMemberPerCluster)
{
    // Two tight pairs; each pair's representative is its cheaper one.
    const Matrix m = Matrix::fromRows({{0.0}, {0.1}, {50.0}, {50.1}});
    const Dendrogram d = agglomerate(m, Linkage::Average);
    const std::vector<double> cost = {5.0, 1.0, 7.0, 2.0};
    const auto sweep = sweepTradeoff(m, d, cost);
    const auto &at2 = sweep[1]; // k == 2
    ASSERT_EQ(at2.numClusters, 2u);
    EXPECT_DOUBLE_EQ(at2.cost, 3.0); // 1.0 + 2.0
}

TEST(Tradeoff, KneePrefersTrueClusterCount)
{
    // Five clean blobs: SSE collapses at k=5 while cost grows
    // linearly, so the knee should land at (or next to) k=5.
    const Matrix m = blobs(8, 5, 0.3, 5);
    const Dendrogram d = agglomerate(m, Linkage::Ward);
    Rng rng(6);
    std::vector<double> cost(m.rows());
    for (double &c : cost)
        c = 100.0 + 10.0 * rng.nextDouble();
    const auto sweep = sweepTradeoff(m, d, cost);
    const std::size_t knee = paretoKnee(sweep);
    EXPECT_GE(sweep[knee].numClusters, 4u);
    EXPECT_LE(sweep[knee].numClusters, 7u);
}

TEST(Tradeoff, KneeTieBreaksTowardFewerClusters)
{
    std::vector<TradeoffPoint> sweep = {
        {1, 1.0, 0.0},
        {2, 0.0, 1.0}, // symmetric to k=1 after normalization
        {3, 1.0, 1.0},
    };
    EXPECT_EQ(paretoKnee(sweep), 0u);
}

TEST(TradeoffDeathTest, EmptySweepPanics)
{
    EXPECT_DEATH(paretoKnee({}), "empty");
}

} // namespace
} // namespace cluster
} // namespace spec17
