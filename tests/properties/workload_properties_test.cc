/**
 * @file
 * Property tests swept across representative workload profiles: for
 * every application lowered through the builder, the emitted trace
 * must honour the profile's mix and structure, and the simulated
 * counters must satisfy the perf-event identities.
 */

#include <gtest/gtest.h>

#include <string>

#include "suite/runner.hh"
#include "trace/synthetic.hh"
#include "workloads/builder.hh"

namespace spec17 {
namespace workloads {
namespace {

using counters::PerfEvent;

class WorkloadProperties
    : public ::testing::TestWithParam<std::string>
{
  protected:
    const WorkloadProfile &
    profile() const
    {
        return findProfile(cpu2017Suite(), GetParam());
    }

    AppInputPair
    pair() const
    {
        return {&profile(), InputSize::Ref, 0};
    }
};

TEST_P(WorkloadProperties, TraceMixTracksProfile)
{
    BuildOptions build;
    build.sampleOps = 300000;
    auto params = buildTraceParams(pair(), build,
                                   0 /* first thread */);
    trace::SyntheticTraceGenerator gen(params);
    isa::MicroOp op;
    std::uint64_t loads = 0, stores = 0, branches = 0, total = 0;
    while (gen.next(op)) {
        ++total;
        loads += op.isLoad();
        stores += op.isStore();
        branches += op.isBranch();
    }
    ASSERT_GT(total, 0u);
    const double n = static_cast<double>(total);
    // Within jitter (3%) plus sampling noise.
    EXPECT_NEAR(loads / n, profile().loadFrac,
                profile().loadFrac * 0.08 + 0.005);
    EXPECT_NEAR(stores / n, profile().storeFrac,
                profile().storeFrac * 0.08 + 0.005);
    EXPECT_NEAR(branches / n, profile().branchFrac,
                profile().branchFrac * 0.08 + 0.005);
}

TEST_P(WorkloadProperties, CounterIdentitiesHold)
{
    suite::RunnerOptions options;
    options.sampleOps = 150000;
    options.warmupOps = 50000;
    suite::SuiteRunner runner(options);
    const suite::PairResult result = runner.runPair(pair());
    auto get = [&](PerfEvent event) {
        return result.counters.get(event);
    };

    // Retirement identities.
    EXPECT_EQ(get(PerfEvent::InstRetiredAny),
              get(PerfEvent::UopsRetiredAll));
    // Load hit/miss partition per level.
    EXPECT_EQ(get(PerfEvent::MemLoadUopsRetiredL1Hit)
                  + get(PerfEvent::MemLoadUopsRetiredL1Miss),
              get(PerfEvent::MemUopsRetiredAllLoads));
    EXPECT_EQ(get(PerfEvent::MemLoadUopsRetiredL2Hit)
                  + get(PerfEvent::MemLoadUopsRetiredL2Miss),
              get(PerfEvent::MemLoadUopsRetiredL1Miss));
    EXPECT_EQ(get(PerfEvent::MemLoadUopsRetiredL3Hit)
                  + get(PerfEvent::MemLoadUopsRetiredL3Miss),
              get(PerfEvent::MemLoadUopsRetiredL2Miss));
    // Branch kinds partition branches.
    EXPECT_EQ(get(PerfEvent::BrInstExecAllConditional)
                  + get(PerfEvent::BrInstExecAllDirectJmp)
                  + get(PerfEvent::BrInstExecAllDirectNearCall)
                  + get(PerfEvent::BrInstExecAllIndirectJumpNonCallRet)
                  + get(PerfEvent::BrInstExecAllIndirectNearReturn),
              get(PerfEvent::BrInstExecAllBranches));
    // Mispredicts bounded by branches; cycles positive.
    EXPECT_LE(get(PerfEvent::BrMispExecAllBranches),
              get(PerfEvent::BrInstExecAllBranches));
    EXPECT_GT(get(PerfEvent::CpuClkUnhaltedRefTsc), 0u);
    // RSS <= VSZ.
    EXPECT_LE(get(PerfEvent::RssBytes), get(PerfEvent::VszBytes));
}

TEST_P(WorkloadProperties, IpcWithinPhysicalBounds)
{
    suite::RunnerOptions options;
    options.sampleOps = 150000;
    options.warmupOps = 50000;
    suite::SuiteRunner runner(options);
    const suite::PairResult result = runner.runPair(pair());
    EXPECT_GT(result.ipc(), 0.01);
    EXPECT_LE(result.ipc(), options.system.core.dispatchWidth);
    EXPECT_GT(result.seconds, 0.0);
}

TEST_P(WorkloadProperties, ThreadsEmitDisjointStreams)
{
    const WorkloadProfile &p = profile();
    if (p.numThreads < 2)
        GTEST_SKIP() << "single-threaded profile";
    BuildOptions build;
    build.sampleOps = 40000;
    auto t0 = buildTraceParams(pair(), build, 0);
    auto t1 = buildTraceParams(pair(), build, 1);
    trace::SyntheticTraceGenerator g0(t0), g1(t1);
    isa::MicroOp a, b;
    int identical = 0, count = 0;
    while (g0.next(a) && g1.next(b)) {
        identical += (a.cls == b.cls && a.effAddr == b.effAddr
                      && a.pc == b.pc);
        ++count;
    }
    EXPECT_LT(identical, count / 2);
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeApps, WorkloadProperties,
    ::testing::Values("505.mcf_r", "525.x264_r", "541.leela_r",
                      "519.lbm_r", "549.fotonik3d_r", "548.exchange2_r",
                      "507.cactuBSSN_r", "619.lbm_s", "657.xz_s",
                      "628.pop2_s", "654.roms_s", "602.gcc_s"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '.')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace workloads
} // namespace spec17
