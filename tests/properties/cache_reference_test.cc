/**
 * @file
 * Differential testing of SetAssocCache against a deliberately naive
 * reference model (per-set vector with explicit move-to-front LRU).
 * Any divergence on random access streams is a bug in one of them;
 * the reference is simple enough to be obviously correct.
 */

#include <gtest/gtest.h>

#include <list>
#include <tuple>
#include <vector>

#include "sim/cache.hh"
#include "util/random.hh"

namespace spec17 {
namespace sim {
namespace {

/** Obviously-correct LRU cache: per-set list, front = most recent. */
class ReferenceLruCache
{
  public:
    ReferenceLruCache(std::uint64_t size_bytes, unsigned assoc,
                      unsigned line_bytes = 64)
        : assoc_(assoc), lineBytes_(line_bytes),
          numSets_(size_bytes / assoc / line_bytes), sets_(numSets_)
    {
    }

    bool
    access(std::uint64_t addr)
    {
        const std::uint64_t line = addr / lineBytes_;
        const std::uint64_t set = line % numSets_;
        const std::uint64_t tag = line / numSets_;
        auto &lru = sets_[set];
        for (auto it = lru.begin(); it != lru.end(); ++it) {
            if (*it == tag) {
                lru.erase(it);
                lru.push_front(tag);
                return true;
            }
        }
        lru.push_front(tag);
        if (lru.size() > assoc_)
            lru.pop_back();
        return false;
    }

  private:
    unsigned assoc_;
    unsigned lineBytes_;
    std::uint64_t numSets_;
    std::vector<std::list<std::uint64_t>> sets_;
};

using Geometry = std::tuple<std::uint64_t, unsigned>;

class CacheDifferential : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheDifferential, MatchesReferenceOnRandomStream)
{
    const auto [size, assoc] = GetParam();
    CacheConfig config;
    config.name = "dut";
    config.sizeBytes = size;
    config.assoc = assoc;
    config.policy = ReplacementPolicy::Lru;
    SetAssocCache dut(config);
    ReferenceLruCache reference(size, assoc);

    Rng rng(0xd1ff);
    for (int i = 0; i < 100000; ++i) {
        // Mixture of footprints so sets see reuse at several depths.
        const std::uint64_t span = (i % 3 == 0) ? (1ull << 14)
            : (i % 3 == 1)                      ? (1ull << 18)
                                                : (1ull << 23);
        const std::uint64_t addr = rng.nextBounded(span);
        ASSERT_EQ(dut.access(addr, false), reference.access(addr))
            << "diverged at access " << i << " addr " << addr;
    }
}

TEST_P(CacheDifferential, MatchesReferenceOnStridedStream)
{
    const auto [size, assoc] = GetParam();
    CacheConfig config;
    config.sizeBytes = size;
    config.assoc = assoc;
    config.policy = ReplacementPolicy::Lru;
    SetAssocCache dut(config);
    ReferenceLruCache reference(size, assoc);

    // Conflict-heavy strides: powers of two around the set span.
    for (const std::uint64_t stride : {64ull, 4096ull, 65536ull}) {
        for (int pass = 0; pass < 3; ++pass) {
            for (std::uint64_t i = 0; i < 2000; ++i) {
                const std::uint64_t addr = i * stride;
                ASSERT_EQ(dut.access(addr, false),
                          reference.access(addr))
                    << "stride " << stride << " i " << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferential,
    ::testing::Values(Geometry{4096, 1}, Geometry{8192, 2},
                      Geometry{32 * 1024, 8}, Geometry{256 * 1024, 8},
                      Geometry{64 * 1024, 16}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        return std::to_string(std::get<0>(info.param)) + "B_"
            + std::to_string(std::get<1>(info.param)) + "way";
    });

} // namespace
} // namespace sim
} // namespace spec17
