/**
 * @file
 * Property tests swept across cache geometries and replacement
 * policies: invariants that must hold for EVERY configuration, not
 * just the Table-I one.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "sim/cache.hh"
#include "util/random.hh"

namespace spec17 {
namespace sim {
namespace {

using CacheParam =
    std::tuple<std::uint64_t /*size*/, unsigned /*assoc*/,
               ReplacementPolicy>;

class CacheProperties : public ::testing::TestWithParam<CacheParam>
{
  protected:
    CacheConfig
    config() const
    {
        CacheConfig c;
        c.name = "prop";
        c.sizeBytes = std::get<0>(GetParam());
        c.assoc = std::get<1>(GetParam());
        c.policy = std::get<2>(GetParam());
        return c;
    }
};

TEST_P(CacheProperties, HitsPlusMissesEqualsAccesses)
{
    SetAssocCache cache(config(), 1);
    Rng rng(7);
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        cache.access(rng.nextBounded(1 << 22), rng.nextBernoulli(0.3));
    EXPECT_EQ(cache.stats().hits + cache.stats().misses,
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(cache.stats().accesses(), static_cast<std::uint64_t>(n));
}

TEST_P(CacheProperties, ResidentWorkingSetStopsMissing)
{
    // A sweep that exactly fills every set can never evict under any
    // policy (invalid ways are always preferred victims), so the
    // second pass is all hits.
    SetAssocCache cache(config(), 2);
    const std::uint64_t bytes = config().sizeBytes;
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t addr = 0; addr < bytes; addr += 64)
            cache.access(addr, false);
    const std::uint64_t lines = bytes / 64;
    EXPECT_EQ(cache.stats().misses, lines);
    EXPECT_EQ(cache.stats().hits, lines);
    EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST_P(CacheProperties, MissesAtLeastCompulsory)
{
    SetAssocCache cache(config(), 3);
    Rng rng(9);
    std::set<std::uint64_t> lines;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t addr = rng.nextBounded(1 << 24);
        lines.insert(addr / 64);
        cache.access(addr, false);
    }
    EXPECT_GE(cache.stats().misses, lines.size());
}

TEST_P(CacheProperties, EvictionsNeverExceedMisses)
{
    SetAssocCache cache(config(), 4);
    Rng rng(11);
    for (int i = 0; i < 20000; ++i)
        cache.access(rng.nextBounded(1 << 24), rng.nextBernoulli(0.5));
    EXPECT_LE(cache.stats().evictions, cache.stats().misses);
    EXPECT_LE(cache.stats().writebacks, cache.stats().evictions);
}

TEST_P(CacheProperties, DeterministicPerSeed)
{
    SetAssocCache a(config(), 5);
    SetAssocCache b(config(), 5);
    Rng rng_a(13), rng_b(13);
    for (int i = 0; i < 5000; ++i) {
        ASSERT_EQ(a.access(rng_a.nextBounded(1 << 22), false),
                  b.access(rng_b.nextBounded(1 << 22), false));
    }
    EXPECT_EQ(a.stats().hits, b.stats().hits);
    EXPECT_EQ(a.stats().evictions, b.stats().evictions);
}

TEST_P(CacheProperties, ProbeNeverChangesOutcome)
{
    // Interleaving probes between accesses must not alter the
    // hit/miss sequence.
    SetAssocCache with_probes(config(), 6);
    SetAssocCache plain(config(), 6);
    Rng rng_a(17), rng_b(17);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t addr_a = rng_a.nextBounded(1 << 22);
        const std::uint64_t addr_b = rng_b.nextBounded(1 << 22);
        with_probes.probe(addr_a ^ 0x12345);
        ASSERT_EQ(with_probes.access(addr_a, false),
                  plain.access(addr_b, false));
    }
}

TEST_P(CacheProperties, FlushRestoresColdBehaviour)
{
    SetAssocCache cache(config(), 7);
    for (std::uint64_t addr = 0; addr < 4096; addr += 64)
        cache.access(addr, false);
    cache.flushAll();
    cache.clearStats();
    for (std::uint64_t addr = 0; addr < 4096; addr += 64)
        EXPECT_FALSE(cache.access(addr, false));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperties,
    ::testing::Combine(
        ::testing::Values(std::uint64_t(4096), std::uint64_t(32 * 1024),
                          std::uint64_t(256 * 1024)),
        ::testing::Values(1u, 2u, 8u),
        ::testing::Values(ReplacementPolicy::Lru,
                          ReplacementPolicy::TreePlru,
                          ReplacementPolicy::Random)),
    [](const ::testing::TestParamInfo<CacheParam> &info) {
        const char *policy = "lru";
        if (std::get<2>(info.param) == ReplacementPolicy::TreePlru)
            policy = "plru";
        else if (std::get<2>(info.param) == ReplacementPolicy::Random)
            policy = "random";
        return std::to_string(std::get<0>(info.param)) + "B_"
            + std::to_string(std::get<1>(info.param)) + "way_"
            + policy;
    });

} // namespace
} // namespace sim
} // namespace spec17
