/**
 * @file
 * Property tests swept across analysis configurations: PCA
 * invariants at several problem shapes and clustering invariants
 * under every linkage.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "cluster/hierarchical.hh"
#include "cluster/sse.hh"
#include "stats/descriptive.hh"
#include "stats/pca.hh"
#include "util/random.hh"

namespace spec17 {
namespace {

// ---------------------------------------------------------------
// PCA invariants across problem shapes
// ---------------------------------------------------------------

using PcaShape = std::tuple<std::size_t /*rows*/, std::size_t /*cols*/>;

class PcaProperties : public ::testing::TestWithParam<PcaShape>
{
  protected:
    stats::Matrix
    data(std::uint64_t seed) const
    {
        const auto [rows, cols] = GetParam();
        Rng rng(seed);
        stats::Matrix m(rows, cols);
        // Half the columns correlated, half independent, one noisy
        // duplicate -- realistic characterization data.
        for (std::size_t r = 0; r < rows; ++r) {
            const double factor = rng.nextGaussian();
            for (std::size_t c = 0; c < cols; ++c) {
                m.at(r, c) = (c % 2 == 0)
                    ? factor + 0.3 * rng.nextGaussian()
                    : rng.nextGaussian();
            }
        }
        return m;
    }
};

TEST_P(PcaProperties, VarianceIsPreservedAndSorted)
{
    const auto pca = stats::computePca(data(1));
    double total = 0.0;
    for (std::size_t i = 0; i < pca.eigenvalues.size(); ++i) {
        total += pca.eigenvalues[i];
        if (i > 0)
            EXPECT_LE(pca.eigenvalues[i], pca.eigenvalues[i - 1] + 1e-9);
        EXPECT_GE(pca.eigenvalues[i], -1e-9);
    }
    // Standardized data: total variance == number of non-constant
    // columns (all columns here are stochastic).
    EXPECT_NEAR(total, double(std::get<1>(GetParam())), 1e-6);
}

TEST_P(PcaProperties, ScoresAreUncorrelated)
{
    const auto pca = stats::computePca(data(2));
    const std::size_t k =
        std::min<std::size_t>(4, pca.scores.cols());
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = i + 1; j < k; ++j) {
            if (pca.eigenvalues[i] < 1e-9
                || pca.eigenvalues[j] < 1e-9) {
                continue;
            }
            EXPECT_NEAR(stats::pearson(pca.scores.col(i),
                                       pca.scores.col(j)),
                        0.0, 1e-6);
        }
    }
}

TEST_P(PcaProperties, ComponentsAreOrthonormal)
{
    const auto pca = stats::computePca(data(3));
    const auto gram =
        pca.components.transpose().multiply(pca.components);
    EXPECT_LT(gram.maxAbsDiff(
                  stats::Matrix::identity(gram.rows())),
              1e-8);
}

TEST_P(PcaProperties, CumulativeVarianceMonotoneToOne)
{
    const auto pca = stats::computePca(data(4));
    double prev = 0.0;
    for (double v : pca.cumulativeVariance) {
        EXPECT_GE(v, prev - 1e-12);
        prev = v;
    }
    EXPECT_NEAR(prev, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PcaProperties,
    ::testing::Values(PcaShape{10, 3}, PcaShape{64, 4},
                      PcaShape{194, 20}, PcaShape{36, 20}),
    [](const ::testing::TestParamInfo<PcaShape> &info) {
        return std::to_string(std::get<0>(info.param)) + "x"
            + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------
// Clustering invariants under every linkage
// ---------------------------------------------------------------

class LinkageProperties
    : public ::testing::TestWithParam<cluster::Linkage>
{
  protected:
    stats::Matrix
    blobs(std::size_t per, std::size_t k, std::uint64_t seed) const
    {
        Rng rng(seed);
        stats::Matrix m(per * k, 3);
        for (std::size_t b = 0; b < k; ++b) {
            for (std::size_t i = 0; i < per; ++i) {
                for (std::size_t d = 0; d < 3; ++d) {
                    m.at(b * per + i, d) =
                        25.0 * double(b == d)
                        + 0.5 * rng.nextGaussian();
                }
            }
        }
        return m;
    }
};

TEST_P(LinkageProperties, EveryCutIsAPartition)
{
    const auto points = blobs(7, 3, 1);
    const auto dendrogram = cluster::agglomerate(points, GetParam());
    for (std::size_t k = 1; k <= points.rows(); ++k) {
        const auto labels = dendrogram.cut(k);
        std::set<std::size_t> distinct(labels.begin(), labels.end());
        EXPECT_EQ(distinct.size(), k);
        for (std::size_t label : labels)
            EXPECT_LT(label, k);
    }
}

TEST_P(LinkageProperties, MergeDistancesMonotone)
{
    const auto points = blobs(6, 3, 2);
    const auto dendrogram = cluster::agglomerate(points, GetParam());
    for (std::size_t i = 1; i < dendrogram.steps().size(); ++i) {
        EXPECT_GE(dendrogram.steps()[i].distance,
                  dendrogram.steps()[i - 1].distance - 1e-9);
    }
}

TEST_P(LinkageProperties, SseMonotoneInClusterCount)
{
    const auto points = blobs(6, 3, 3);
    const auto dendrogram = cluster::agglomerate(points, GetParam());
    double prev = std::numeric_limits<double>::infinity();
    for (std::size_t k = 1; k <= points.rows(); ++k) {
        const double sse =
            cluster::sumSquaredError(points, dendrogram.cut(k));
        EXPECT_LE(sse, prev + 1e-9);
        prev = sse;
    }
}

TEST_P(LinkageProperties, WellSeparatedBlobsRecovered)
{
    const std::size_t per = 8;
    const auto points = blobs(per, 3, 4);
    const auto dendrogram = cluster::agglomerate(points, GetParam());
    const auto labels = dendrogram.cut(3);
    for (std::size_t b = 0; b < 3; ++b) {
        for (std::size_t i = 1; i < per; ++i) {
            EXPECT_EQ(labels[b * per + i], labels[b * per])
                << cluster::linkageName(GetParam());
        }
    }
}

TEST_P(LinkageProperties, MergeSizesAccountForEveryLeaf)
{
    const auto points = blobs(5, 3, 5);
    const auto dendrogram = cluster::agglomerate(points, GetParam());
    EXPECT_EQ(dendrogram.steps().back().size, points.rows());
}

INSTANTIATE_TEST_SUITE_P(
    AllLinkages, LinkageProperties,
    ::testing::Values(cluster::Linkage::Single,
                      cluster::Linkage::Complete,
                      cluster::Linkage::Average, cluster::Linkage::Ward),
    [](const ::testing::TestParamInfo<cluster::Linkage> &info) {
        return cluster::linkageName(info.param);
    });

} // namespace
} // namespace spec17
