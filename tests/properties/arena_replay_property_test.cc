/**
 * @file
 * Property sweep over the trace-arena replay space: for random batch
 * sizes crossed with random arena byte budgets -- including budgets
 * too small to retain any arena (every pair served uncached) and
 * budgets that force LRU eviction churn mid-sweep -- a suite sweep
 * replaying captured arenas must be byte-identical to live generation
 * on results, result-cache journal bytes, and telemetry series, at
 * jobs 1 and jobs 8. Budget and eviction behaviour are execution
 * strategy, never semantics (docs/determinism.md); this test is the
 * property-level enforcement of that claim.
 */

#include "suite/arena_store.hh"
#include "suite/result_cache.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/sink.hh"
#include "util/random.hh"
#include "util/units.hh"

namespace spec17 {
namespace suite {
namespace {

using workloads::InputSize;

constexpr std::uint64_t kSampleOps = 30000;
constexpr std::uint64_t kWarmupOps = 8000;
constexpr std::uint64_t kIntervalOps = 7000;

RunnerOptions
laneOptions(unsigned jobs, std::uint64_t batch_ops,
            TraceArenaStore *store)
{
    RunnerOptions options;
    options.sampleOps = kSampleOps;
    options.warmupOps = kWarmupOps;
    options.jobs = jobs;
    options.batchOps = batch_ops;
    // Interval sampling stays on so replayed pairs publish the same
    // telemetry series live generation does. No watchdog deadlines:
    // an armed deadline disables replay by design (the cooperative
    // cancel must act DURING generation), which would turn this test
    // into a trivial live-vs-live comparison.
    options.sampleIntervalOps = kIntervalOps;
    options.arenaStore = store;
    return options;
}

/**
 * Deterministic budget population: one pair's arena at this sample
 * size is ~1-2 MiB of lanes, and the cpu2006/test sweep holds a few
 * dozen pairs, so the population spans "nothing fits" (uncached
 * service), "a handful fit" (LRU churn), and "everything fits".
 */
std::vector<std::uint64_t>
budgetPopulation()
{
    std::vector<std::uint64_t> budgets = {
        1,          // smaller than any arena: all uncached
        2 * kMiB,   // roughly one arena resident at a time
        512 * kMiB, // everything resident
    };
    Rng rng(0xa7e4a);
    for (int draw = 0; draw < 2; ++draw)
        budgets.push_back(1 + rng.nextBounded(16 * kMiB));
    return budgets;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
expectResultsIdentical(const std::vector<PairResult> &a,
                       const std::vector<PairResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].errored, b[i].errored) << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].wallCycles, b[i].wallCycles) << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].seconds, b[i].seconds) << a[i].name;
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(a[i].counters.get(event),
                      b[i].counters.get(event))
                << a[i].name << " " << perfEventName(event);
        }
    }
}

void
expectSameTelemetry(const telemetry::MemorySink &ref,
                    const telemetry::MemorySink &got)
{
    ASSERT_EQ(got.all().size(), ref.all().size());
    for (const auto &[name, series] : ref.all()) {
        const telemetry::TimeSeries *other = got.find(name);
        ASSERT_NE(other, nullptr) << name;
        std::ostringstream ref_csv, csv;
        telemetry::renderSeriesCsv(series, ref_csv);
        telemetry::renderSeriesCsv(*other, csv);
        EXPECT_EQ(csv.str(), ref_csv.str()) << name;
    }
}

TEST(ArenaReplayProperty, RandomBudgetsAndBatchSizesMatchLiveGeneration)
{
    const auto &suite = workloads::cpu2006Suite();

    // Reference: live generation (no arena store), jobs 1, same
    // telemetry configuration as every swept point.
    telemetry::MemorySink ref_sink;
    RunnerOptions ref_options = laneOptions(1, 0, nullptr);
    ref_options.telemetrySink = &ref_sink;
    const auto golden =
        SuiteRunner(ref_options).runAll(suite, InputSize::Test);
    ASSERT_FALSE(ref_sink.all().empty());

    Rng rng(0xc0ffee);
    for (const std::uint64_t budget : budgetPopulation()) {
        const std::uint64_t batch = 1 + rng.nextBounded(4096);
        TraceArenaStore store(budget);
        for (const unsigned jobs : {1u, 8u}) {
            SCOPED_TRACE(::testing::Message()
                         << "budget=" << budget << " batchOps=" << batch
                         << " jobs=" << jobs);
            telemetry::MemorySink sink;
            RunnerOptions options = laneOptions(jobs, batch, &store);
            options.telemetrySink = &sink;
            const auto results =
                SuiteRunner(options).runAll(suite, InputSize::Test);

            expectResultsIdentical(golden, results);
            expectSameTelemetry(ref_sink, sink);
        }
        // Both sweeps replayed through the store: every pair was
        // captured (first sweep) and the second sweep was served from
        // residency wherever the budget allowed.
        EXPECT_GT(store.stats().captures, 0u);
        EXPECT_LE(store.stats().residentBytes, budget);
    }
}

TEST(ArenaReplayProperty, JournalBytesMatchLiveGeneration)
{
    const auto &suite = workloads::cpu2006Suite();
    const std::string dir(::testing::TempDir());

    const std::string ref_base = dir + "/spec17_arena_prop_ref";
    ResultCache ref_cache(ref_base);
    ref_cache.invalidate();
    ref_cache.runOrLoad(SuiteRunner(laneOptions(1, 0, nullptr)), suite,
                        InputSize::Test);
    const std::string ref_bytes =
        fileBytes(ref_base + ".cpu2006.test.csv");
    ASSERT_FALSE(ref_bytes.empty());

    // A journal-focused subset (journal content depends on results
    // only, pinned exhaustively above): one starved budget, one
    // everything-resident budget, reusing one store across job counts
    // so the jobs=8 run replays arenas the jobs=1 run captured.
    Rng rng(0x5411e);
    for (const std::uint64_t budget : {std::uint64_t(1), 512 * kMiB}) {
        TraceArenaStore store(budget);
        const std::uint64_t batch = 1 + rng.nextBounded(4096);
        for (const unsigned jobs : {1u, 8u}) {
            SCOPED_TRACE(::testing::Message()
                         << "budget=" << budget << " batchOps=" << batch
                         << " jobs=" << jobs);
            const std::string base = dir + "/spec17_arena_prop_b"
                + std::to_string(budget) + "_j" + std::to_string(jobs);
            ResultCache cache(base);
            cache.invalidate();
            cache.runOrLoad(SuiteRunner(laneOptions(jobs, batch, &store)),
                            suite, InputSize::Test);
            EXPECT_EQ(fileBytes(base + ".cpu2006.test.csv"), ref_bytes);
            cache.invalidate();
        }
        // The full-budget store serves the second sweep from
        // residency: replay-of-a-replayed-capture is still identical.
        if (budget > kMiB)
            EXPECT_GT(store.stats().hits, 0u);
    }
    ref_cache.invalidate();
}

} // namespace
} // namespace suite
} // namespace spec17
