/**
 * @file
 * Failure injection: corrupt inputs, hostile filesystem state and
 * degenerate workloads must produce clean, diagnosable failures (or
 * graceful degradation) -- never silent corruption or undefined
 * behaviour.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>

#include "sim/simulator.hh"
#include "suite/result_cache.hh"
#include "trace/file.hh"
#include "trace/kernels.hh"
#include "trace/synthetic.hh"

namespace spec17 {
namespace {

suite::RunnerOptions
fastOptions()
{
    suite::RunnerOptions options;
    options.sampleOps = 40000;
    options.warmupOps = 10000;
    return options;
}

TEST(FailureInjection, CacheInUnwritableDirectoryStillReturnsResults)
{
    // Saving warns; the sweep result must still come back intact.
    suite::SuiteRunner runner(fastOptions());
    suite::ResultCache cache("/proc/definitely/not/writable/base");
    const auto results = cache.runOrLoad(
        runner, workloads::cpu2006Suite(), workloads::InputSize::Test);
    EXPECT_EQ(results.size(), 29u);
}

TEST(FailureInjection, CacheFileThatIsADirectoryIsAMiss)
{
    const std::string base =
        std::string(::testing::TempDir()) + "/spec17_dircache";
    const std::string file = base + ".cpu2006.test.csv";
    ::mkdir(file.c_str(), 0755);
    suite::SuiteRunner runner(fastOptions());
    suite::ResultCache cache(base);
    const auto results = cache.runOrLoad(
        runner, workloads::cpu2006Suite(), workloads::InputSize::Test);
    EXPECT_EQ(results.size(), 29u);
    ::rmdir(file.c_str());
}

TEST(FailureInjection, StaleCacheHeaderIsAMissNotACrash)
{
    const std::string base =
        std::string(::testing::TempDir()) + "/spec17_stale";
    suite::SuiteRunner runner(fastOptions());
    suite::ResultCache cache(base);
    cache.invalidate();
    cache.runOrLoad(runner, workloads::cpu2006Suite(),
                    workloads::InputSize::Test);

    // Rewrite the counter-header row as an older build would have.
    const std::string file = base + ".cpu2006.test.csv";
    std::ifstream in(file);
    std::string fingerprint, header, rest, line;
    std::getline(in, fingerprint);
    std::getline(in, header);
    while (std::getline(in, line))
        rest += line + "\n";
    in.close();
    {
        std::ofstream out(file, std::ios::trunc);
        out << fingerprint << "\n"
            << "name,input,errored,wall_cycles,old_column\n"
            << rest;
    }
    const auto results = cache.runOrLoad(
        runner, workloads::cpu2006Suite(), workloads::InputSize::Test);
    EXPECT_EQ(results.size(), 29u); // re-ran, did not parse stale rows
    cache.invalidate();
}

TEST(FailureInjection, CacheRowWithWrongFieldCountIsAMiss)
{
    const std::string base =
        std::string(::testing::TempDir()) + "/spec17_shortrow";
    suite::SuiteRunner runner(fastOptions());
    suite::ResultCache cache(base);
    cache.invalidate();
    cache.runOrLoad(runner, workloads::cpu2006Suite(),
                    workloads::InputSize::Test);

    // Drop the last few cells of the first data row (a torn write of
    // pre-atomic-commit vintage). The whole file must read as a miss.
    const std::string file = base + ".cpu2006.test.csv";
    std::ifstream in(file);
    std::string content, line;
    for (int i = 0; std::getline(in, line); ++i) {
        if (i == 2)
            line = line.substr(0, line.size() / 2);
        content += line + "\n";
    }
    in.close();
    {
        std::ofstream out(file, std::ios::trunc);
        out << content;
    }
    const auto results = cache.runOrLoad(
        runner, workloads::cpu2006Suite(), workloads::InputSize::Test);
    EXPECT_EQ(results.size(), 29u);
    cache.invalidate();
}

TEST(FailureInjection, CacheRowWithUnparsableNumbersIsAMiss)
{
    const std::string base =
        std::string(::testing::TempDir()) + "/spec17_nanrow";
    suite::SuiteRunner runner(fastOptions());
    suite::ResultCache cache(base);
    cache.invalidate();
    cache.runOrLoad(runner, workloads::cpu2006Suite(),
                    workloads::InputSize::Test);

    // Corrupt one numeric cell with text; parsing must degrade to a
    // logged miss, never a std::stod throw mid-load.
    const std::string file = base + ".cpu2006.test.csv";
    std::ifstream in(file);
    std::string content, line;
    for (int i = 0; std::getline(in, line); ++i) {
        if (i == 4) {
            const auto comma = line.rfind(',');
            line = line.substr(0, comma + 1) + "not-a-number";
        }
        content += line + "\n";
    }
    in.close();
    {
        std::ofstream out(file, std::ios::trunc);
        out << content;
    }
    const auto results = cache.runOrLoad(
        runner, workloads::cpu2006Suite(), workloads::InputSize::Test);
    EXPECT_EQ(results.size(), 29u);
    cache.invalidate();
}

TEST(FailureInjection, MalformedProfileIsAContainedDiagnosableFailure)
{
    // A profile violating its invariants must produce an errored
    // result naming the defect -- not NaNs, not a mid-sweep abort.
    workloads::WorkloadProfile broken = workloads::cpu2006Suite()[0];
    broken.memory.l1MissRate = 1.7;
    suite::SuiteRunner runner(fastOptions());
    const auto result = runner.runPair(
        {&broken, workloads::InputSize::Test, 0});
    EXPECT_TRUE(result.errored);
    ASSERT_NE(result.finalFailure(), nullptr);
    EXPECT_EQ(result.finalFailure()->category,
              suite::FailureCategory::BadProfile);
    EXPECT_NE(result.finalFailure()->message.find("l1MissRate"),
              std::string::npos);
}

TEST(FailureInjectionDeathTest, FuzzedTraceRecordsFailCleanly)
{
    // Valid header, garbage records: replay must panic with a
    // diagnostic, not wander into undefined enum values.
    const std::string path =
        std::string(::testing::TempDir()) + "/spec17_fuzz.s17t";
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write("S17T", 4);
        const std::uint32_t version = 1;
        const std::uint64_t count = 4, reserve = 0;
        out.write(reinterpret_cast<const char *>(&version), 4);
        out.write(reinterpret_cast<const char *>(&count), 8);
        out.write(reinterpret_cast<const char *>(&reserve), 8);
        std::vector<unsigned char> garbage(4 * 28, 0xFF);
        out.write(reinterpret_cast<const char *>(garbage.data()),
                  static_cast<std::streamsize>(garbage.size()));
    }
    trace::FileTrace replay(path);
    isa::MicroOp op;
    EXPECT_DEATH(replay.next(op), "corrupt trace record");
    std::remove(path.c_str());
}

TEST(FailureInjection, EmptyTraceRunsToABenignResult)
{
    trace::VectorTrace empty({});
    sim::CpuSimulator simulator(
        sim::SystemConfig::haswellXeonE52650Lv3());
    const sim::SimResult result = simulator.run(empty);
    EXPECT_EQ(result.counters.get(
                  counters::PerfEvent::InstRetiredAny),
              0u);
    EXPECT_DOUBLE_EQ(result.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(result.cycles, 0.0);
}

TEST(FailureInjection, GeneratorWithZeroOpsTerminatesImmediately)
{
    trace::SyntheticTraceParams params;
    params.numOps = 0;
    params.regions = {
        {trace::AccessPattern::Random, 4096, 64, 1.0, 1.0}};
    trace::SyntheticTraceGenerator gen(params);
    isa::MicroOp op;
    EXPECT_FALSE(gen.next(op));
}

TEST(FailureInjectionDeathTest, RunnerRejectsMeaninglessSample)
{
    suite::RunnerOptions options;
    options.sampleOps = 10;
    EXPECT_DEATH(suite::SuiteRunner{options}, "too small");
}

TEST(FailureInjection, MinimumSizeRegionWorks)
{
    trace::SyntheticTraceParams params;
    params.numOps = 1000;
    params.regions = {
        {trace::AccessPattern::Sequential, 64, 64, 1.0, 1.0}};
    trace::SyntheticTraceGenerator gen(params);
    isa::MicroOp op;
    std::uint64_t count = 0;
    while (gen.next(op))
        ++count;
    EXPECT_EQ(count, 1000u);
}

} // namespace
} // namespace spec17
