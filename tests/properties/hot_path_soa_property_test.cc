/**
 * @file
 * Property sweep over the SoA fast lane's batch-size space: for a
 * spread of deterministically drawn batch sizes -- the degenerate 1,
 * a prime 7, sizes that straddle telemetry sampling intervals, sizes
 * clamped by the watchdog op budget, and random draws in between --
 * a suite sweep on the batched SoA lane must be byte-identical to the
 * per-op reference lane on results, result-cache journal bytes, and
 * telemetry series, at jobs 1 and jobs 8. This generalizes the
 * hand-picked golden cases in hot_path_golden_test.cc to arbitrary
 * points of the knob space.
 */

#include "suite/result_cache.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/sink.hh"
#include "util/random.hh"

namespace spec17 {
namespace suite {
namespace {

using workloads::InputSize;

constexpr std::uint64_t kSampleOps = 60000;
constexpr std::uint64_t kWarmupOps = 20000;
constexpr std::uint64_t kIntervalOps = 17000;
constexpr std::uint64_t kDeadlineOps = 130000;

RunnerOptions
laneOptions(unsigned jobs, std::uint64_t batch_ops, bool unbatched)
{
    RunnerOptions options;
    options.sampleOps = kSampleOps;
    options.warmupOps = kWarmupOps;
    options.jobs = jobs;
    options.batchOps = batch_ops;
    options.unbatchedStepping = unbatched;
    // Interval sampling and a (generous) deterministic watchdog are
    // both on, so every swept batch size exercises the step() clamp
    // against interval boundaries AND the per-attempt op budget.
    options.sampleIntervalOps = kIntervalOps;
    options.pairDeadlineOps = kDeadlineOps;
    return options;
}

/** Deterministic batch-size population: the required edge cases plus
 *  random draws across the space (same sequence every run). */
std::vector<std::uint64_t>
batchSizePopulation()
{
    std::vector<std::uint64_t> sizes = {
        1,                  // degenerate: one op per pull
        7,                  // prime, never divides an interval
        kIntervalOps - 1,   // straddles every sampling interval
        kIntervalOps + 1,   // immediately clamped at each interval
        kDeadlineOps,       // watchdog-clamped: budget < one batch
    };
    Rng rng(0xb47c4);
    for (int draw = 0; draw < 3; ++draw)
        sizes.push_back(1 + rng.nextBounded(8192));
    return sizes;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
expectResultsIdentical(const std::vector<PairResult> &a,
                       const std::vector<PairResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].errored, b[i].errored) << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].wallCycles, b[i].wallCycles) << a[i].name;
        EXPECT_DOUBLE_EQ(a[i].seconds, b[i].seconds) << a[i].name;
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(a[i].counters.get(event),
                      b[i].counters.get(event))
                << a[i].name << " " << perfEventName(event);
        }
    }
}

TEST(HotPathSoaProperty, RandomBatchSizesMatchReferenceLane)
{
    const auto &suite = workloads::cpu2006Suite();

    // Reference: per-op lane, jobs 1, with the same telemetry and
    // watchdog configuration as every swept point.
    telemetry::MemorySink ref_sink;
    RunnerOptions ref_options = laneOptions(1, 0, /*unbatched=*/true);
    ref_options.telemetrySink = &ref_sink;
    const auto golden =
        SuiteRunner(ref_options).runAll(suite, InputSize::Test);
    ASSERT_FALSE(ref_sink.all().empty());

    for (const std::uint64_t batch : batchSizePopulation()) {
        for (const unsigned jobs : {1u, 8u}) {
            SCOPED_TRACE(::testing::Message()
                         << "batchOps=" << batch << " jobs=" << jobs);
            telemetry::MemorySink sink;
            RunnerOptions options =
                laneOptions(jobs, batch, /*unbatched=*/false);
            options.telemetrySink = &sink;
            const auto results =
                SuiteRunner(options).runAll(suite, InputSize::Test);

            expectResultsIdentical(golden, results);

            ASSERT_EQ(sink.all().size(), ref_sink.all().size());
            for (const auto &[name, series] : ref_sink.all()) {
                const telemetry::TimeSeries *other = sink.find(name);
                ASSERT_NE(other, nullptr) << name;
                std::ostringstream ref_csv, csv;
                telemetry::renderSeriesCsv(series, ref_csv);
                telemetry::renderSeriesCsv(*other, csv);
                EXPECT_EQ(csv.str(), ref_csv.str()) << name;
            }
        }
    }
}

TEST(HotPathSoaProperty, JournalBytesMatchReferenceLane)
{
    const auto &suite = workloads::cpu2006Suite();
    const std::string dir(::testing::TempDir());

    const std::string ref_base = dir + "/spec17_soa_prop_ref";
    ResultCache ref_cache(ref_base);
    ref_cache.invalidate();
    ref_cache.runOrLoad(SuiteRunner(laneOptions(1, 0, true)), suite,
                        InputSize::Test);
    const std::string ref_bytes =
        fileBytes(ref_base + ".cpu2006.test.csv");
    ASSERT_FALSE(ref_bytes.empty());

    // A small journal-focused subset of the population (the journal
    // content depends on results only, pinned exhaustively above).
    Rng rng(0x50a50a);
    const std::vector<std::uint64_t> sizes = {
        7, kIntervalOps - 1, 1 + rng.nextBounded(8192)};
    for (const std::uint64_t batch : sizes) {
        for (const unsigned jobs : {1u, 8u}) {
            SCOPED_TRACE(::testing::Message()
                         << "batchOps=" << batch << " jobs=" << jobs);
            const std::string base = dir + "/spec17_soa_prop_b"
                + std::to_string(batch) + "_j" + std::to_string(jobs);
            ResultCache cache(base);
            cache.invalidate();
            cache.runOrLoad(
                SuiteRunner(laneOptions(jobs, batch, false)), suite,
                InputSize::Test);
            EXPECT_EQ(fileBytes(base + ".cpu2006.test.csv"), ref_bytes);
            cache.invalidate();
        }
    }
    ref_cache.invalidate();
}

} // namespace
} // namespace suite
} // namespace spec17
