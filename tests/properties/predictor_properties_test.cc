/**
 * @file
 * Property tests swept across the direction predictors: sanity
 * bounds every predictor must satisfy, plus capability expectations
 * per type.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/branch.hh"
#include "util/random.hh"

namespace spec17 {
namespace sim {
namespace {

class PredictorProperties
    : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<DirectionPredictor>
    make() const
    {
        return makeDirectionPredictor(GetParam());
    }

    /** Mispredict rate over n Bernoulli(p) branches at @p sites. */
    double
    rate(DirectionPredictor &predictor, double p, int n,
         int sites, std::uint64_t seed) const
    {
        Rng rng(seed);
        int wrong = 0;
        for (int i = 0; i < n; ++i) {
            const std::uint64_t pc =
                0x400000 + rng.nextBounded(sites) * 16;
            const bool taken = rng.nextBernoulli(p);
            wrong += predictor.predict(pc) != taken;
            predictor.update(pc, taken);
        }
        return wrong / static_cast<double>(n);
    }
};

TEST_P(PredictorProperties, NameRoundTripsThroughFactory)
{
    EXPECT_EQ(make()->name(), GetParam());
}

TEST_P(PredictorProperties, AlwaysTakenStreamIsLearnedPerfectly)
{
    auto predictor = make();
    int wrong_after_warmup = 0;
    // Warmup must exceed the history length: gshare touches a fresh
    // counter for every new history value until it saturates.
    for (int i = 0; i < 2000; ++i) {
        const bool correct = predictor->predict(0x1000);
        predictor->update(0x1000, true);
        if (i >= 32)
            wrong_after_warmup += !correct;
    }
    EXPECT_EQ(wrong_after_warmup, 0) << GetParam();
}

TEST_P(PredictorProperties, RandomBranchesCannotBeatCoinFlipMuch)
{
    auto predictor = make();
    const double r = rate(*predictor, 0.5, 40000, 64, 3);
    // No predictor beats ~50% on i.i.d. coin flips; none should be
    // adversarially worse either.
    EXPECT_GT(r, 0.42) << GetParam();
    EXPECT_LT(r, 0.58) << GetParam();
}

TEST_P(PredictorProperties, DeterministicAcrossInstances)
{
    auto a = make();
    auto b = make();
    Rng rng(5);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t pc = 0x2000 + rng.nextBounded(128) * 4;
        const bool taken = rng.nextBernoulli(0.7);
        ASSERT_EQ(a->predict(pc), b->predict(pc)) << GetParam();
        a->update(pc, taken);
        b->update(pc, taken);
    }
}

TEST_P(PredictorProperties, AdaptiveTypesLearnBiasedPopulations)
{
    if (GetParam() == "static-taken")
        GTEST_SKIP() << "static prediction does not adapt";
    auto predictor = make();
    const double r = rate(*predictor, 0.97, 40000, 32, 7);
    // Intrinsic floor is 3%; adaptive predictors should be near it.
    EXPECT_LT(r, 0.06) << GetParam();
}

TEST_P(PredictorProperties, HistoryTypesLearnAlternation)
{
    const bool has_history =
        GetParam() == "gshare" || GetParam() == "tournament";
    auto predictor = make();
    int wrong = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const bool taken = (i % 2) == 0;
        wrong += predictor->predict(0x3000) != taken;
        predictor->update(0x3000, taken);
    }
    const double r = wrong / static_cast<double>(n);
    if (has_history)
        EXPECT_LT(r, 0.05) << GetParam();
    else
        EXPECT_GT(r, 0.30) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllPredictors, PredictorProperties,
    ::testing::Values("static-taken", "bimodal", "gshare",
                      "tournament"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // namespace
} // namespace sim
} // namespace spec17
