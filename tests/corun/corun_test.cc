/**
 * @file
 * Co-run interference engine: planner enumeration and mask legality,
 * runner determinism (byte-identical journals at any --jobs count),
 * journal resume, row serialization, and the analysis artifacts
 * (slowdown matrix, sensitivity/aggressiveness scores, Pareto table).
 */

#include "corun/analysis.hh"
#include "corun/plan.hh"
#include "corun/runner.hh"
#include "corun/store.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <vector>

namespace spec17 {
namespace corun {
namespace {

using workloads::InputSize;

/** Two short rate apps keep a full campaign under a second. */
CorunOptions
fastOptions(unsigned jobs = 1)
{
    CorunOptions options;
    options.sampleOps = 20000;
    options.warmupOps = 5000;
    options.chunkOps = 2000;
    options.size = InputSize::Test;
    options.jobs = jobs;
    return options;
}

PlanOptions
fastPlan()
{
    PlanOptions plan;
    plan.apps = {"505.mcf_r", "541.leela_r"};
    return plan;
}

std::string
tempBase(const char *tag)
{
    return std::string(::testing::TempDir()) + "/spec17_corun_" + tag;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<std::string>
groupNames(const std::vector<CorunGroup> &groups)
{
    std::vector<std::string> names;
    for (const CorunGroup &group : groups)
        names.push_back(group.name());
    return names;
}

TEST(CorunPlan, PairEnumerationIsCanonical)
{
    PlanOptions plan;
    plan.apps = {"505.mcf_r", "519.lbm_r", "541.leela_r"};
    const auto groups = planGroups(workloads::cpu2017Suite(), plan);
    EXPECT_EQ(groupNames(groups),
              (std::vector<std::string>{
                  "505.mcf_r+505.mcf_r", "505.mcf_r+519.lbm_r",
                  "505.mcf_r+541.leela_r", "519.lbm_r+519.lbm_r",
                  "519.lbm_r+541.leela_r", "541.leela_r+541.leela_r"}));

    plan.includeSelf = false;
    const auto strict = planGroups(workloads::cpu2017Suite(), plan);
    EXPECT_EQ(groupNames(strict),
              (std::vector<std::string>{
                  "505.mcf_r+519.lbm_r", "505.mcf_r+541.leela_r",
                  "519.lbm_r+541.leela_r"}));
}

TEST(CorunPlan, QuartetsAreStrictCombinations)
{
    PlanOptions plan;
    plan.apps = {"505.mcf_r", "519.lbm_r", "541.leela_r",
                 "548.exchange2_r", "557.xz_r"};
    plan.groupSize = 4;
    const auto groups = planGroups(workloads::cpu2017Suite(), plan);
    EXPECT_EQ(groups.size(), 5u); // C(5, 4)
    EXPECT_EQ(groups.front().name(),
              "505.mcf_r+519.lbm_r+541.leela_r+548.exchange2_r");
    for (const CorunGroup &group : groups)
        EXPECT_TRUE(group.masks.empty());
}

TEST(CorunPlan, PartitionSweepExpandsEachPair)
{
    PlanOptions plan = fastPlan();
    plan.includeSelf = false;
    plan.partitionSweep = true;
    plan.l3Ways = 4;
    const auto groups = planGroups(workloads::cpu2017Suite(), plan);
    // The unpartitioned pair plus every contiguous k | 4-k split.
    EXPECT_EQ(groupNames(groups),
              (std::vector<std::string>{
                  "505.mcf_r+541.leela_r",
                  "505.mcf_r+541.leela_r@0x1+0xe",
                  "505.mcf_r+541.leela_r@0x3+0xc",
                  "505.mcf_r+541.leela_r@0x7+0x8"}));
}

TEST(CorunPlan, MaskHelpersAndValidation)
{
    EXPECT_EQ(contiguousMask(0, 4), 0xfu);
    EXPECT_EQ(contiguousMask(4, 16), 0xffff0u);
    EXPECT_EQ(maskSetLabel({0xf, 0xffff0}), "0xf+0xffff0");

    EXPECT_EQ(validateMasks({0xf, 0xffff0}, 20), "");
    EXPECT_NE(validateMasks({0xf, 0x0}, 20).find("empty"),
              std::string::npos);
    EXPECT_NE(validateMasks({0xf, 0x100000}, 20).find("beyond"),
              std::string::npos);
}

TEST(CorunPlan, GroupSetDigestTracksEnumeration)
{
    const auto groups = planGroups(workloads::cpu2017Suite(), fastPlan());
    const std::string digest = groupSetDigest(groups);
    EXPECT_EQ(digest.size(), 16u);
    EXPECT_EQ(groupSetDigest(groups), digest);

    auto fewer = groups;
    fewer.pop_back();
    EXPECT_NE(groupSetDigest(fewer), digest);
}

TEST(CorunRunner, ConfigKeyExcludesJobsButKeepsChunk)
{
    EXPECT_EQ(CorunRunner(fastOptions(1)).configKey(),
              CorunRunner(fastOptions(8)).configKey());

    CorunOptions other = fastOptions();
    other.chunkOps = 4000;
    // The interleave granularity shapes contention -- changing it
    // must invalidate journals.
    EXPECT_NE(CorunRunner(other).configKey(),
              CorunRunner(fastOptions()).configKey());
}

void
expectResultsIdentical(const std::vector<CorunResult> &a,
                       const std::vector<CorunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        ASSERT_EQ(a[i].members.size(), b[i].members.size());
        for (std::size_t m = 0; m < a[i].members.size(); ++m) {
            const MemberResult &x = a[i].members[m];
            const MemberResult &y = b[i].members[m];
            EXPECT_EQ(x.name, y.name) << a[i].name;
            EXPECT_DOUBLE_EQ(x.cycles, y.cycles) << a[i].name;
            EXPECT_DOUBLE_EQ(x.soloCycles, y.soloCycles) << a[i].name;
            EXPECT_EQ(x.instructions, y.instructions) << a[i].name;
            EXPECT_EQ(x.l3Misses, y.l3Misses) << a[i].name;
            EXPECT_EQ(x.evictionsSuffered, y.evictionsSuffered)
                << a[i].name;
        }
    }
}

TEST(CorunRunner, SweepIsByteIdenticalAcrossJobCounts)
{
    const auto groups =
        planGroups(workloads::cpu2017Suite(), fastPlan());

    CorunRunner sequential(fastOptions(1));
    CorunRunner parallel(fastOptions(8));
    const auto golden = sequential.runGroups(groups);
    std::vector<std::size_t> seen;
    const auto pooled = parallel.runGroups(
        groups,
        [&](const CorunResult &, std::size_t index, std::size_t) {
            seen.push_back(index);
        });
    expectResultsIdentical(golden, pooled);
    // The ordered-commit drain delivers observer calls canonically
    // even at jobs=8.
    ASSERT_EQ(seen.size(), groups.size());
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], i);

    // And the journal bytes match record for record.
    const std::string seq_base = tempBase("jobs_seq");
    CorunStore seq_store(seq_base);
    seq_store.invalidate();
    seq_store.runOrLoad(sequential, groups);

    const std::string par_base = tempBase("jobs_par");
    CorunStore par_store(par_base);
    par_store.invalidate();
    par_store.runOrLoad(parallel, groups);

    const std::string seq_bytes =
        fileBytes(seq_store.journalFile(sequential));
    ASSERT_FALSE(seq_bytes.empty());
    EXPECT_EQ(fileBytes(par_store.journalFile(parallel)), seq_bytes);
    seq_store.invalidate();
    par_store.invalidate();
}

TEST(CorunRunner, MembersNeverBeatTheirSoloBaseline)
{
    const auto groups =
        planGroups(workloads::cpu2017Suite(), fastPlan());
    const auto results = CorunRunner(fastOptions()).runGroups(groups);
    for (const CorunResult &result : results) {
        for (const MemberResult &member : result.members) {
            // Contention only adds latency: co-run cycles cannot
            // drop below the solo run of the identical trace.
            EXPECT_GE(member.slowdown(), 0.999)
                << result.name << " " << member.name;
            EXPECT_GT(member.instructions, 0u);
        }
        EXPECT_GT(result.throughput(), 0.0);
        EXPECT_GE(result.worstSlowdown(), 0.999);
    }
}

TEST(CorunStore, RowSerializationRoundTrips)
{
    CorunResult result;
    result.name = "a+b@0x3+0xc";
    result.masks = {0x3, 0xc};
    for (int m = 0; m < 2; ++m) {
        MemberResult member;
        member.name = m == 0 ? "a" : "b";
        member.cycles = 12345.625 + m;
        member.soloCycles = 10000.125;
        member.instructions = 20000 + m;
        member.l3Hits = 17;
        member.l3Misses = 4242;
        member.evictionsInflicted = 7;
        member.evictionsSuffered = 9;
        member.occupancyLines = 1024;
        result.members.push_back(member);
    }

    std::string reason;
    const CorunResult parsed =
        parseCorunRow(serializeCorunRow(result), reason);
    EXPECT_EQ(reason, "");
    EXPECT_EQ(parsed.name, result.name);
    EXPECT_EQ(parsed.masks, result.masks);
    ASSERT_EQ(parsed.members.size(), 2u);
    for (std::size_t m = 0; m < 2; ++m) {
        EXPECT_EQ(parsed.members[m].name, result.members[m].name);
        EXPECT_DOUBLE_EQ(parsed.members[m].cycles,
                         result.members[m].cycles);
        EXPECT_DOUBLE_EQ(parsed.members[m].soloCycles,
                         result.members[m].soloCycles);
        EXPECT_EQ(parsed.members[m].instructions,
                  result.members[m].instructions);
        EXPECT_EQ(parsed.members[m].l3Hits, result.members[m].l3Hits);
        EXPECT_EQ(parsed.members[m].occupancyLines,
                  result.members[m].occupancyLines);
    }

    const CorunResult damaged = parseCorunRow("a+b,-", reason);
    EXPECT_TRUE(damaged.name.empty());
    EXPECT_NE(reason, "");
}

/** Truncates @p file to its 2 header lines + @p keep_rows records. */
void
truncateJournal(const std::string &file, std::size_t keep_rows)
{
    std::ifstream in(file);
    ASSERT_TRUE(in.good());
    std::string line, kept;
    for (std::size_t i = 0; i < keep_rows + 2; ++i) {
        ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
        kept += line + "\n";
    }
    in.close();
    std::ofstream out(file, std::ios::trunc);
    out << kept;
}

TEST(CorunStore, ResumeReplaysPrefixAndRestoresIdenticalBytes)
{
    const std::string base = tempBase("resume");
    const auto groups =
        planGroups(workloads::cpu2017Suite(), fastPlan());
    CorunRunner runner(fastOptions(4));

    CorunStore store(base);
    store.invalidate();
    const auto golden = store.runOrLoad(runner, groups);
    const std::string file = store.journalFile(runner);
    const std::string golden_bytes = fileBytes(file);
    ASSERT_FALSE(golden_bytes.empty());

    truncateJournal(file, 1);
    CorunStore resumed(base, /*resume=*/true);
    const auto results = resumed.runOrLoad(runner, groups);

    expectResultsIdentical(golden, results);
    ASSERT_EQ(results.size(), groups.size());
    EXPECT_TRUE(results[0].replayed);
    for (std::size_t i = 1; i < results.size(); ++i)
        EXPECT_FALSE(results[i].replayed) << results[i].name;
    EXPECT_EQ(fileBytes(file), golden_bytes);

    // A complete journal replays wholesale on the next load.
    const auto reloaded = resumed.runOrLoad(runner, groups);
    expectResultsIdentical(golden, reloaded);
    for (const CorunResult &result : reloaded)
        EXPECT_TRUE(result.replayed) << result.name;
    resumed.invalidate();
}

TEST(CorunStore, ResumeRefusesForeignConfig)
{
    const std::string base = tempBase("mismatch");
    const auto groups =
        planGroups(workloads::cpu2017Suite(), fastPlan());
    CorunStore store(base, /*resume=*/true);
    store.invalidate();
    store.runOrLoad(CorunRunner(fastOptions()), groups);

    CorunOptions other = fastOptions();
    other.chunkOps = 4000;
    EXPECT_THROW(store.runOrLoad(CorunRunner(other), groups),
                 CorunJournalMismatchError);
    store.invalidate();
}

/** Synthesizes an unpartitioned pair result from cycle counts. */
CorunResult
makePair(const std::string &a, double cycles_a, double solo_a,
         const std::string &b, double cycles_b, double solo_b,
         std::vector<std::uint32_t> masks = {})
{
    CorunResult result;
    result.name = a + "+" + b;
    if (!masks.empty())
        result.name += "@" + maskSetLabel(masks);
    result.masks = std::move(masks);
    MemberResult first;
    first.name = a;
    first.cycles = cycles_a;
    first.soloCycles = solo_a;
    MemberResult second;
    second.name = b;
    second.cycles = cycles_b;
    second.soloCycles = solo_b;
    result.members = {first, second};
    return result;
}

TEST(CorunAnalysis, MatrixAndScoresFollowTheDefinitions)
{
    const std::vector<CorunResult> results = {
        makePair("a", 150.0, 100.0, "b", 110.0, 100.0),
        makePair("a", 130.0, 100.0, "c", 120.0, 100.0),
        makePair("b", 100.0, 100.0, "b", 105.0, 100.0),
        // Partitioned rows stay out of the matrix.
        makePair("a", 500.0, 100.0, "b", 100.0, 100.0, {0x1, 0xe}),
    };
    const SlowdownMatrix matrix = buildMatrix(results);
    ASSERT_EQ(matrix.apps,
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_DOUBLE_EQ(matrix.slowdown[0][1], 1.5); // a victim of b
    EXPECT_DOUBLE_EQ(matrix.slowdown[1][0], 1.1); // b victim of a
    EXPECT_DOUBLE_EQ(matrix.slowdown[0][2], 1.3);
    EXPECT_DOUBLE_EQ(matrix.slowdown[2][0], 1.2);
    // The self-pair diagonal keeps the worse of the two copies.
    EXPECT_DOUBLE_EQ(matrix.slowdown[1][1], 1.05);
    EXPECT_DOUBLE_EQ(matrix.slowdown[2][2], 0.0); // c+c not run

    const auto scores = scoreApps(matrix);
    ASSERT_EQ(scores.size(), 3u);
    // a suffers (1.5 + 1.3) / 2 and inflicts (1.1 + 1.2) / 2.
    EXPECT_DOUBLE_EQ(scores[0].sensitivity, 1.4);
    EXPECT_DOUBLE_EQ(scores[0].aggressiveness, 1.15);
    // c's only filled row/column entries are the pair with a.
    EXPECT_DOUBLE_EQ(scores[2].sensitivity, 1.2);
    EXPECT_DOUBLE_EQ(scores[2].aggressiveness, 1.3);
}

TEST(CorunAnalysis, ParetoDominanceIsPerPair)
{
    const std::vector<CorunResult> results = {
        // Free-for-all: throughput 100/150 + 100/110 ~ 1.576, worst 1.5.
        makePair("a", 150.0, 100.0, "b", 110.0, 100.0),
        // A fair split: better on both axes -> dominates the above.
        makePair("a", 120.0, 100.0, "b", 105.0, 100.0, {0x3, 0xc}),
        // A starving split: worse on both axes -> dominated.
        makePair("a", 400.0, 100.0, "b", 100.0, 100.0, {0x1, 0xe}),
        // A different pair never competes with a+b.
        makePair("a", 500.0, 100.0, "c", 500.0, 100.0),
    };
    const auto table = paretoTable(results);
    ASSERT_EQ(table.size(), 4u);
    EXPECT_EQ(table[0].pair, "a+b");
    EXPECT_EQ(table[0].partition, "free-for-all");
    EXPECT_TRUE(table[0].dominated);
    EXPECT_EQ(table[1].partition, "0x3+0xc");
    EXPECT_FALSE(table[1].dominated);
    EXPECT_TRUE(table[2].dominated);
    // Terrible numbers, but unchallenged within its own pair.
    EXPECT_EQ(table[3].pair, "a+c");
    EXPECT_FALSE(table[3].dominated);
    EXPECT_DOUBLE_EQ(table[0].worstSlowdown, 1.5);
}

} // namespace
} // namespace corun
} // namespace spec17
