#include "tools/cli.hh"

#include <gtest/gtest.h>

#include <sstream>

namespace spec17 {
namespace cli {
namespace {

CommandLine
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv(args);
    return parseCommandLine(static_cast<int>(argv.size()),
                            argv.data());
}

TEST(CliParse, SplitsPositionalsAndFlags)
{
    const CommandLine c =
        parse({"stat", "505.mcf_r", "--size=test", "--csv"});
    EXPECT_EQ(c.command, "stat");
    ASSERT_EQ(c.positional.size(), 2u);
    EXPECT_EQ(c.positional[1], "505.mcf_r");
    EXPECT_EQ(c.flag("size"), "test");
    EXPECT_TRUE(c.hasFlag("csv"));
    EXPECT_FALSE(c.hasFlag("size-missing"));
}

TEST(CliParse, FlagDefaultsAndNumbers)
{
    const CommandLine c = parse({"stat", "--sample=12345"});
    EXPECT_EQ(c.flag("nope", "fallback"), "fallback");
    EXPECT_EQ(c.flagUint("sample", 1), 12345u);
    EXPECT_EQ(c.flagUint("warmup", 777), 777u);
}

TEST(CliParseDeathTest, MalformedNumberIsFatal)
{
    const CommandLine c = parse({"stat", "--sample=abc"});
    EXPECT_EXIT(c.flagUint("sample", 1),
                ::testing::ExitedWithCode(1), "wants a number");
}

TEST(CliParse, EmptyArgvGivesEmptyCommand)
{
    const CommandLine c = parse({});
    EXPECT_TRUE(c.command.empty());
}

TEST(CliRun, NoCommandPrintsUsageAndFails)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({}), out, err), 2);
    EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliRun, HelpFlagSucceeds)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"list", "--help"}), out, err), 0);
    EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliRun, UnknownCommandFails)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"frobnicate"}), out, err), 2);
    EXPECT_NE(err.str().find("unknown command"), std::string::npos);
}

TEST(CliRun, ConfigPrintsTableOneMachine)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"config"}), out, err), 0);
    EXPECT_NE(out.str().find("30.000 MiB"), std::string::npos);
    EXPECT_NE(out.str().find("tournament"), std::string::npos);
}

TEST(CliRun, ConfigHonorsPredictorFlag)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"config", "--predictor=gshare"}), out,
                         err),
              0);
    EXPECT_NE(out.str().find("gshare"), std::string::npos);
}

TEST(CliRun, ListCountsThePaperPairs)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"list", "--size=ref"}), out, err), 0);
    EXPECT_NE(out.str().find("64 application-input pairs"),
              std::string::npos);
    EXPECT_NE(out.str().find("505.mcf_r"), std::string::npos);
    EXPECT_NE(out.str().find("errored-in-paper"), std::string::npos);

    std::ostringstream out06;
    EXPECT_EQ(runCommand(parse({"list", "--suite=cpu2006"}), out06,
                         err),
              0);
    EXPECT_NE(out06.str().find("29 application-input pairs"),
              std::string::npos);
}

TEST(CliRun, ListRejectsBadSuiteAndSize)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"list", "--suite=cpu95"}), out, err),
              2);
    EXPECT_NE(err.str().find("unknown --suite"), std::string::npos);
    std::ostringstream err2;
    EXPECT_EQ(runCommand(parse({"list", "--size=gigantic"}), out,
                         err2),
              2);
    EXPECT_NE(err2.str().find("unknown --size"), std::string::npos);
}

TEST(CliRun, StatRequiresKnownApplication)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat"}), out, err), 2);
    std::ostringstream err2;
    EXPECT_EQ(runCommand(parse({"stat", "999.none_r"}), out, err2), 2);
    EXPECT_NE(err2.str().find("no application"), std::string::npos);
    std::ostringstream err3;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r", "--input=5"}),
                         out, err3),
              2);
    EXPECT_NE(err3.str().find("has 1 ref inputs"), std::string::npos);
}

TEST(CliRun, StatEmitsCountersAndMetrics)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "548.exchange2_r",
                                "--sample=60000", "--warmup=20000"}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("inst_retired.any"), std::string::npos);
    EXPECT_NE(out.str().find("IPC"), std::string::npos);
    EXPECT_NE(out.str().find("estimated native run"),
              std::string::npos);
}

TEST(CliRun, CharacterizeReportsPaperErroredPairsInFailureSummary)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2017",
                                "--size=test", "--sample=1000",
                                "--warmup=0", "--no-cache"}),
                         out, err),
              0);
    // The paper could not collect perlbench's test.pl or any
    // 627.cam4_s input; those pairs surface in the failure summary
    // (and only there -- they are excluded from the metrics table).
    EXPECT_NE(out.str().find("failure summary"), std::string::npos);
    EXPECT_NE(out.str().find("errored-in-paper"), std::string::npos);
    EXPECT_NE(out.str().find("627.cam4_s"), std::string::npos);
}

TEST(CliRun, UsageDocumentsFaultIsolationFlags)
{
    for (const char *flag : {"--retries", "--pair-deadline",
                             "--resume", "--retry-backoff-ms"})
        EXPECT_NE(usage().find(flag), std::string::npos) << flag;
}

TEST(CliRun, UsageDocumentsJobsFlag)
{
    EXPECT_NE(usage().find("--jobs"), std::string::npos);
    EXPECT_NE(usage().find("parallel execution"), std::string::npos);
}

TEST(CliRun, CharacterizeRunsOnWorkerPool)
{
    // The parallel sweep must produce the same table a sequential one
    // does -- compare full command output, not just the exit code.
    std::ostringstream seq_out, par_out, err;
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2006",
                                "--size=test", "--sample=2000",
                                "--warmup=500", "--no-cache"}),
                         seq_out, err),
              0);
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2006",
                                "--size=test", "--sample=2000",
                                "--warmup=500", "--no-cache",
                                "--jobs=4"}),
                         par_out, err),
              0);
    EXPECT_NE(seq_out.str().find("429.mcf"), std::string::npos);
    EXPECT_EQ(par_out.str(), seq_out.str());
}

TEST(CliRun, UsageIsGeneratedFromTheFlagTable)
{
    // Every flag the CLI accepts appears in --help, with its
    // placeholder and group header; the table is the single source
    // of truth, so help cannot drift from the accepted set.
    const std::string text = usage();
    for (const FlagSpec &spec : flagTable()) {
        EXPECT_NE(text.find("--" + std::string(spec.name)),
                  std::string::npos)
            << spec.name;
        EXPECT_NE(text.find(spec.group), std::string::npos)
            << spec.group;
        if (spec.placeholder[0] != '\0')
            EXPECT_NE(text.find(spec.placeholder), std::string::npos)
                << spec.placeholder;
    }
    for (const char *flag :
         {"--sample-interval-ops", "--telemetry-out",
          "--telemetry-format", "--progress"})
        EXPECT_NE(text.find(flag), std::string::npos) << flag;
}

TEST(CliRun, UnknownFlagIsRejected)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r", "--samle=1"}),
                         out, err),
              2);
    EXPECT_NE(err.str().find("unknown flag '--samle'"),
              std::string::npos);
    // --help still wins over an unknown flag.
    std::ostringstream out2, err2;
    EXPECT_EQ(runCommand(parse({"stat", "--bogus", "--help"}), out2,
                         err2),
              0);
    EXPECT_NE(out2.str().find("usage:"), std::string::npos);
}

TEST(CliRun, StatRejectsBadTelemetryFormat)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--sample-interval-ops=1000",
                                "--telemetry-out=/tmp/x",
                                "--telemetry-format=xml"}),
                         out, err),
              2);
    EXPECT_NE(err.str().find("telemetry-format"), std::string::npos);
}

TEST(CliRun, StatReportsIntervalTelemetry)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "548.exchange2_r",
                                "--sample=60000", "--warmup=20000",
                                "--sample-interval-ops=10000"}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("telemetry: 6 interval(s)"),
              std::string::npos);
    EXPECT_NE(out.str().find("interval IPC CoV"), std::string::npos);
}

TEST(CliRun, SubsetValidatesSetFlag)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"subset", "--set=all"}), out, err), 2);
    EXPECT_NE(err.str().find("rate or speed"), std::string::npos);
}

TEST(CliRun, PhasesRequiresApplication)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"phases"}), out, err), 2);
    EXPECT_NE(err.str().find("needs an application"),
              std::string::npos);
}

TEST(CliRun, PhasesRunsOnRealProfile)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"phases", "519.lbm_r",
                                "--sample=100000",
                                "--warmup=20000"}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("timeline:"), std::string::npos);
    EXPECT_NE(out.str().find("phase A"), std::string::npos);
}


TEST(CliRun, RecordAndReplayRoundTrip)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/cli_record.s17t";
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"record", "548.exchange2_r",
                                "--sample=50000",
                                ("--out=" + path).c_str()}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("50,000"), std::string::npos);
    std::ostringstream out2;
    EXPECT_EQ(runCommand(parse({"replay", path.c_str()}), out2, err),
              0);
    EXPECT_NE(out2.str().find("IPC"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliRun, RecordRequiresKnownApplication)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"record"}), out, err), 2);
    std::ostringstream err2;
    EXPECT_EQ(runCommand(parse({"record", "123.bogus_r"}), out, err2),
              2);
    EXPECT_NE(err2.str().find("no application"), std::string::npos);
}


TEST(CliRun, ValidateReportsDeviations)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"validate", "--suite=cpu2006",
                                "--sample=60000", "--warmup=20000",
                                "--tolerance=100"}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("deviate more than"), std::string::npos);
    EXPECT_NE(out.str().find("429.mcf"), std::string::npos);
}

} // namespace
} // namespace cli
} // namespace spec17
