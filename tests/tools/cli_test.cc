#include "tools/cli.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "suite/journal.hh"

namespace spec17 {
namespace cli {
namespace {

CommandLine
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv(args);
    return parseCommandLine(static_cast<int>(argv.size()),
                            argv.data());
}

TEST(CliParse, SplitsPositionalsAndFlags)
{
    const CommandLine c =
        parse({"stat", "505.mcf_r", "--size=test", "--csv"});
    EXPECT_EQ(c.command, "stat");
    ASSERT_EQ(c.positional.size(), 2u);
    EXPECT_EQ(c.positional[1], "505.mcf_r");
    EXPECT_EQ(c.flag("size"), "test");
    EXPECT_TRUE(c.hasFlag("csv"));
    EXPECT_FALSE(c.hasFlag("size-missing"));
}

TEST(CliParse, FlagDefaultsAndNumbers)
{
    const CommandLine c = parse({"stat", "--sample=12345"});
    EXPECT_EQ(c.flag("nope", "fallback"), "fallback");
    EXPECT_EQ(c.flagUint("sample", 1), 12345u);
    EXPECT_EQ(c.flagUint("warmup", 777), 777u);
}

TEST(CliParseDeathTest, MalformedNumberIsFatal)
{
    const CommandLine c = parse({"stat", "--sample=abc"});
    EXPECT_EXIT(c.flagUint("sample", 1),
                ::testing::ExitedWithCode(1), "wants a number");
}

TEST(CliParse, EmptyArgvGivesEmptyCommand)
{
    const CommandLine c = parse({});
    EXPECT_TRUE(c.command.empty());
}

TEST(CliRun, NoCommandPrintsUsageAndFails)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({}), out, err), 2);
    EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliRun, HelpFlagSucceeds)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"list", "--help"}), out, err), 0);
    EXPECT_NE(out.str().find("usage:"), std::string::npos);
}

TEST(CliRun, UnknownCommandFails)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"frobnicate"}), out, err), 2);
    EXPECT_NE(err.str().find("unknown command"), std::string::npos);
}

TEST(CliRun, ConfigPrintsTableOneMachine)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"config"}), out, err), 0);
    EXPECT_NE(out.str().find("30.000 MiB"), std::string::npos);
    EXPECT_NE(out.str().find("tournament"), std::string::npos);
}

TEST(CliRun, ConfigHonorsPredictorFlag)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"config", "--predictor=gshare"}), out,
                         err),
              0);
    EXPECT_NE(out.str().find("gshare"), std::string::npos);
}

TEST(CliRun, ListCountsThePaperPairs)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"list", "--size=ref"}), out, err), 0);
    EXPECT_NE(out.str().find("64 application-input pairs"),
              std::string::npos);
    EXPECT_NE(out.str().find("505.mcf_r"), std::string::npos);
    EXPECT_NE(out.str().find("errored-in-paper"), std::string::npos);

    std::ostringstream out06;
    EXPECT_EQ(runCommand(parse({"list", "--suite=cpu2006"}), out06,
                         err),
              0);
    EXPECT_NE(out06.str().find("29 application-input pairs"),
              std::string::npos);
}

TEST(CliRun, ListRejectsBadSuiteAndSize)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"list", "--suite=cpu95"}), out, err),
              2);
    EXPECT_NE(err.str().find("unknown --suite"), std::string::npos);
    std::ostringstream err2;
    EXPECT_EQ(runCommand(parse({"list", "--size=gigantic"}), out,
                         err2),
              2);
    EXPECT_NE(err2.str().find("unknown --size"), std::string::npos);
}

TEST(CliRun, StatRequiresKnownApplication)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat"}), out, err), 2);
    std::ostringstream err2;
    EXPECT_EQ(runCommand(parse({"stat", "999.none_r"}), out, err2), 2);
    EXPECT_NE(err2.str().find("no application"), std::string::npos);
    std::ostringstream err3;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r", "--input=5"}),
                         out, err3),
              2);
    EXPECT_NE(err3.str().find("has 1 ref inputs"), std::string::npos);
}

TEST(CliRun, StatEmitsCountersAndMetrics)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "548.exchange2_r",
                                "--sample=60000", "--warmup=20000"}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("inst_retired.any"), std::string::npos);
    EXPECT_NE(out.str().find("IPC"), std::string::npos);
    EXPECT_NE(out.str().find("estimated native run"),
              std::string::npos);
}

TEST(CliRun, CharacterizeReportsPaperErroredPairsInFailureSummary)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2017",
                                "--size=test", "--sample=1000",
                                "--warmup=0", "--no-cache"}),
                         out, err),
              0);
    // The paper could not collect perlbench's test.pl or any
    // 627.cam4_s input; those pairs surface in the failure summary
    // (and only there -- they are excluded from the metrics table).
    EXPECT_NE(out.str().find("failure summary"), std::string::npos);
    EXPECT_NE(out.str().find("errored-in-paper"), std::string::npos);
    EXPECT_NE(out.str().find("627.cam4_s"), std::string::npos);
}

TEST(CliRun, UsageDocumentsFaultIsolationFlags)
{
    for (const char *flag : {"--retries", "--pair-deadline",
                             "--resume", "--retry-backoff-ms"})
        EXPECT_NE(usage().find(flag), std::string::npos) << flag;
}

TEST(CliRun, UsageDocumentsJobsFlag)
{
    EXPECT_NE(usage().find("--jobs"), std::string::npos);
    EXPECT_NE(usage().find("parallel execution"), std::string::npos);
}

TEST(CliRun, CharacterizeRunsOnWorkerPool)
{
    // The parallel sweep must produce the same table a sequential one
    // does -- compare full command output, not just the exit code.
    std::ostringstream seq_out, par_out, err;
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2006",
                                "--size=test", "--sample=2000",
                                "--warmup=500", "--no-cache"}),
                         seq_out, err),
              0);
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2006",
                                "--size=test", "--sample=2000",
                                "--warmup=500", "--no-cache",
                                "--jobs=4"}),
                         par_out, err),
              0);
    EXPECT_NE(seq_out.str().find("429.mcf"), std::string::npos);
    EXPECT_EQ(par_out.str(), seq_out.str());
}

TEST(CliRun, UsageIsGeneratedFromTheFlagTable)
{
    // Every flag the CLI accepts appears in --help, with its
    // placeholder and group header; the table is the single source
    // of truth, so help cannot drift from the accepted set.
    const std::string text = usage();
    for (const FlagSpec &spec : flagTable()) {
        EXPECT_NE(text.find("--" + std::string(spec.name)),
                  std::string::npos)
            << spec.name;
        EXPECT_NE(text.find(spec.group), std::string::npos)
            << spec.group;
        if (spec.placeholder[0] != '\0')
            EXPECT_NE(text.find(spec.placeholder), std::string::npos)
                << spec.placeholder;
    }
    for (const char *flag :
         {"--sample-interval-ops", "--telemetry-out",
          "--telemetry-format", "--progress"})
        EXPECT_NE(text.find(flag), std::string::npos) << flag;
}

TEST(CliRun, UnknownFlagIsRejected)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r", "--samle=1"}),
                         out, err),
              2);
    EXPECT_NE(err.str().find("unknown flag '--samle'"),
              std::string::npos);
    // --help still wins over an unknown flag.
    std::ostringstream out2, err2;
    EXPECT_EQ(runCommand(parse({"stat", "--bogus", "--help"}), out2,
                         err2),
              0);
    EXPECT_NE(out2.str().find("usage:"), std::string::npos);
}

TEST(CliRun, BatchOpsZeroIsRejected)
{
    // An explicit zero batch size is a contained error (exit 2 plus
    // a message), not a panic and not a silent fallback.
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--batch-ops=0"}),
                         out, err),
              2);
    EXPECT_NE(err.str().find("--batch-ops must be positive"),
              std::string::npos);
}

TEST(CliRun, LaneFlagsAreResultInvariant)
{
    // --batch-ops and --unbatched-stepping are execution-strategy
    // knobs: any legal combination prints the identical stat report.
    const std::vector<const char *> laneFlags = {
        nullptr, "--batch-ops=7", "--batch-ops=1024",
        "--unbatched-stepping"};
    std::string reference;
    for (std::size_t i = 0; i < laneFlags.size(); ++i) {
        std::vector<const char *> argv = {"stat", "505.mcf_r",
                                          "--sample=20000",
                                          "--warmup=5000"};
        if (laneFlags[i] != nullptr)
            argv.push_back(laneFlags[i]);
        std::ostringstream out, err;
        EXPECT_EQ(runCommand(parseCommandLine(
                                 static_cast<int>(argv.size()),
                                 argv.data()),
                             out, err),
                  0);
        if (i == 0)
            reference = out.str();
        else
            EXPECT_EQ(out.str(), reference) << "variant " << i;
    }
}

TEST(CliRun, StatRejectsBadTelemetryFormat)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--sample-interval-ops=1000",
                                "--telemetry-out=/tmp/x",
                                "--telemetry-format=xml"}),
                         out, err),
              2);
    EXPECT_NE(err.str().find("telemetry-format"), std::string::npos);
}

TEST(CliRun, StatReportsIntervalTelemetry)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "548.exchange2_r",
                                "--sample=60000", "--warmup=20000",
                                "--sample-interval-ops=10000"}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("telemetry: 6 interval(s)"),
              std::string::npos);
    EXPECT_NE(out.str().find("interval IPC CoV"), std::string::npos);
}

TEST(CliRun, SubsetValidatesSetFlag)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"subset", "--set=all"}), out, err), 2);
    EXPECT_NE(err.str().find("rate or speed"), std::string::npos);
}

TEST(CliRun, PhasesRequiresApplication)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"phases"}), out, err), 2);
    EXPECT_NE(err.str().find("needs an application"),
              std::string::npos);
}

TEST(CliRun, PhasesRunsOnRealProfile)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"phases", "519.lbm_r",
                                "--sample=100000",
                                "--warmup=20000"}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("timeline:"), std::string::npos);
    EXPECT_NE(out.str().find("phase A"), std::string::npos);
}


TEST(CliRun, RecordAndReplayRoundTrip)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/cli_record.s17t";
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"record", "548.exchange2_r",
                                "--sample=50000",
                                ("--out=" + path).c_str()}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("50,000"), std::string::npos);
    std::ostringstream out2;
    EXPECT_EQ(runCommand(parse({"replay", path.c_str()}), out2, err),
              0);
    EXPECT_NE(out2.str().find("IPC"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliRun, RecordRequiresKnownApplication)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"record"}), out, err), 2);
    std::ostringstream err2;
    EXPECT_EQ(runCommand(parse({"record", "123.bogus_r"}), out, err2),
              2);
    EXPECT_NE(err2.str().find("no application"), std::string::npos);
}


/** One synthetic v2 journal for merge/fsck CLI tests. */
std::string
writeSyntheticJournal(const std::string &path, unsigned k, unsigned n,
                      std::initializer_list<const char *> payloads)
{
    suite::JournalHeader header;
    header.configFingerprint = suite::hex16(suite::fnv1a("cli-test"));
    header.pairsDigest = suite::hex16(suite::fnv1a("cli-pairs"));
    header.shardIndex = k;
    header.shardCount = n;
    std::string content =
        header.serialize() + "\nname,value,record_hash\n";
    for (const char *payload : payloads)
        content += std::string(payload) + ","
            + suite::recordHash(header.configFingerprint, payload)
            + "\n";
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
    return content;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    return content.str();
}

TEST(CliRun, CharacterizeRejectsMalformedShard)
{
    for (const char *bad : {"--shard=5/4", "--shard=0/2",
                            "--shard=banana", "--shard="}) {
        std::ostringstream out, err;
        EXPECT_EQ(runCommand(parse({"characterize", "--no-cache",
                                    bad}),
                             out, err),
                  2)
            << bad;
        EXPECT_NE(err.str().find("--shard wants K/N"),
                  std::string::npos)
            << bad;
    }
}

TEST(CliRun, MergeValidatesItsArguments)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"merge"}), out, err), 2);
    EXPECT_NE(err.str().find("needs shard journal files"),
              std::string::npos);

    std::ostringstream out2, err2;
    EXPECT_EQ(runCommand(parse({"merge", "some.csv"}), out2, err2), 2);
    EXPECT_NE(err2.str().find("--out"), std::string::npos);

    // A missing input is an integrity failure (exit 1), not usage.
    std::ostringstream out3, err3;
    EXPECT_EQ(runCommand(parse({"merge", "--out=/tmp/x.csv",
                                "/nonexistent/shard.csv"}),
                         out3, err3),
              1);
    EXPECT_NE(err3.str().find("cannot read"), std::string::npos);
}

TEST(CliRun, FsckReportsCleanAndCorruptJournals)
{
    const std::string dir = ::testing::TempDir();
    const std::string clean = dir + "/cli_fsck_clean.csv";
    const std::string corrupt = dir + "/cli_fsck_corrupt.csv";
    writeSyntheticJournal(clean, 1, 1, {"p01,42", "p02,43"});
    const std::string intact = writeSyntheticJournal(
        corrupt, 1, 1, {"p01,42", "p02,43"});
    {
        // Tear the last record.
        std::ofstream out(corrupt, std::ios::trunc | std::ios::binary);
        out << intact.substr(0, intact.size() - 6);
    }

    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"fsck", clean.c_str()}), out, err), 0);
    EXPECT_NE(out.str().find("2 intact record(s)"), std::string::npos);

    // Every corruption class exits nonzero.
    std::ostringstream out2, err2;
    EXPECT_EQ(runCommand(parse({"fsck", clean.c_str(),
                                corrupt.c_str()}),
                         out2, err2),
              1);
    EXPECT_NE(out2.str().find("CORRUPT at record 1"),
              std::string::npos);

    // --repair drops exactly the damaged suffix, then fsck is clean.
    std::ostringstream out3, err3;
    EXPECT_EQ(runCommand(parse({"fsck", "--repair",
                                corrupt.c_str()}),
                         out3, err3),
              0);
    EXPECT_NE(out3.str().find("repaired"), std::string::npos);
    std::ostringstream out4, err4;
    EXPECT_EQ(runCommand(parse({"fsck", corrupt.c_str()}), out4,
                         err4),
              0);
    EXPECT_NE(out4.str().find("1 intact record(s)"),
              std::string::npos);

    // Headerless garbage stays unrepairable (and nonzero).
    {
        std::ofstream out5(corrupt, std::ios::trunc);
        out5 << "garbage\n";
    }
    std::ostringstream out6, err6;
    EXPECT_EQ(runCommand(parse({"fsck", "--repair",
                                corrupt.c_str()}),
                         out6, err6),
              1);
    EXPECT_NE(out6.str().find("UNREPAIRABLE"), std::string::npos);

    std::ostringstream out7, err7;
    EXPECT_EQ(runCommand(parse({"fsck"}), out7, err7), 2);
    std::remove(clean.c_str());
    std::remove(corrupt.c_str());
}

TEST(CliRun, ShardedCharacterizeMergesByteIdenticalToUnsharded)
{
    const std::string base =
        std::string(::testing::TempDir()) + "/cli_shard_roundtrip";
    ::setenv("SPEC17_CACHE", base.c_str(), 1);
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2006",
                                "--size=test", "--sample=2000",
                                "--warmup=500", "--jobs=8"}),
                         out, err),
              0);
    const std::string canonical = base + ".cpu2006.test.csv";

    for (const char *shard : {"--shard=2/2", "--shard=1/2"}) {
        std::ostringstream shard_out, shard_err;
        EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2006",
                                    "--size=test", "--sample=2000",
                                    "--warmup=500", shard}),
                             shard_out, shard_err),
                  0)
            << shard;
    }
    const std::string shard1 = base + ".cpu2006.test.shard1of2.csv";
    const std::string shard2 = base + ".cpu2006.test.shard2of2.csv";
    const std::string merged = base + ".merged.csv";
    std::ostringstream merge_out, merge_err;
    EXPECT_EQ(runCommand(parse({"merge",
                                ("--out=" + merged).c_str(),
                                shard2.c_str(), shard1.c_str()}),
                         merge_out, merge_err),
              0)
        << merge_err.str();
    EXPECT_NE(merge_out.str().find("merged 2 shard(s)"),
              std::string::npos);
    EXPECT_FALSE(fileBytes(merged).empty());
    EXPECT_EQ(fileBytes(merged), fileBytes(canonical));

    ::unsetenv("SPEC17_CACHE");
    for (const std::string &file :
         {canonical, shard1, shard2, merged})
        std::remove(file.c_str());
}

TEST(CliRun, ResumeRefusesJournalFromAnotherConfig)
{
    const std::string base =
        std::string(::testing::TempDir()) + "/cli_resume_mismatch";
    ::setenv("SPEC17_CACHE", base.c_str(), 1);
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2006",
                                "--size=test", "--sample=2000",
                                "--warmup=500"}),
                         out, err),
              0);
    // Same campaign journal, different config key: --resume must be
    // a clear refusal, not a silent replay of foreign results.
    std::ostringstream out2, err2;
    EXPECT_EQ(runCommand(parse({"characterize", "--suite=cpu2006",
                                "--size=test", "--sample=3000",
                                "--warmup=500", "--resume"}),
                         out2, err2),
              2);
    EXPECT_NE(err2.str().find("refusing to resume"),
              std::string::npos);
    ::unsetenv("SPEC17_CACHE");
    std::remove((base + ".cpu2006.test.csv").c_str());
}

TEST(CliRun, UsageDocumentsShardingAndJournalTools)
{
    const std::string text = usage();
    for (const char *needle :
         {"--shard", "--allow-partial", "--repair", "merge --out",
          "fsck", "sharded campaigns"})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(CliRun, UarchFlagContradictionsAreContainedErrors)
{
    // Contradictory mechanism configurations are usage errors (exit 2
    // plus a pointed message), caught before any simulator is built.
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--way-predictor=psychic"}),
                         out, err),
              2);
    EXPECT_NE(err.str().find("want none|mru|utag"), std::string::npos);

    std::ostringstream err2;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--predictor=tage",
                                "--tage-tables=0"}),
                         out, err2),
              2);
    EXPECT_NE(err2.str().find("at least one tagged history table"),
              std::string::npos);

    std::ostringstream err3;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--prefetcher=stream",
                                "--stream-degree=0"}),
                         out, err3),
              2);
    EXPECT_NE(err3.str().find("--stream-degree must be positive"),
              std::string::npos);

    std::ostringstream err4;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--prefetcher=stream",
                                "--stream-degree=8",
                                "--stream-distance=4"}),
                         out, err4),
              2);
    EXPECT_NE(err4.str().find("cannot overshoot"), std::string::npos);
}

TEST(CliRun, StatAcceptsTheUarchMechanismFlags)
{
    // The full mechanism stack -- TAGE, stream at both levels, utag
    // way prediction -- runs end to end from the CLI.
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--sample=20000", "--warmup=5000",
                                "--predictor=tage", "--tage-tables=3",
                                "--prefetcher=stream",
                                "--l2-prefetcher=stream",
                                "--stream-degree=2",
                                "--stream-distance=8",
                                "--way-predictor=utag",
                                "--way-penalty=4"}),
                         out, err),
              0)
        << err.str();
    EXPECT_NE(out.str().find("IPC"), std::string::npos);
}

TEST(CliRun, ExploreValidatesItsAxis)
{
    // Missing and unknown axes both list the accepted names.
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"explore"}), out, err), 2);
    EXPECT_NE(err.str().find("--axis=AXIS"), std::string::npos);
    EXPECT_NE(err.str().find("way-predictor"), std::string::npos);

    std::ostringstream err2;
    EXPECT_EQ(runCommand(parse({"explore", "--axis=voltage"}), out,
                         err2),
              2);
    EXPECT_NE(err2.str().find("got 'voltage'"), std::string::npos);
    EXPECT_NE(err2.str().find("l2-prefetcher"), std::string::npos);
}

TEST(CliRun, ExploreMultiAxisContradictionsAreContainedErrors)
{
    std::ostringstream out;
    const auto expectUsageError =
        [&](std::initializer_list<const char *> argv,
            const char *needle) {
        std::ostringstream err;
        EXPECT_EQ(runCommand(parse(argv), out, err), 2);
        EXPECT_NE(err.str().find(needle), std::string::npos)
            << "wanted '" << needle << "' in: " << err.str();
    };

    // One sweep shape per run.
    expectUsageError({"explore", "--axis=predictor",
                      "--multi-axis=predictor,way-predictor"},
                     "contradictory");
    // Fewer than two axes is what --axis is for.
    expectUsageError({"explore", "--multi-axis=predictor"},
                     "two or more");
    // Repeating an axis would square its grid for nothing.
    expectUsageError({"explore", "--multi-axis=predictor,predictor"},
                     "repeats axis");
    // Unknown axes list the accepted names, geometry grids included.
    expectUsageError({"explore", "--multi-axis=predictor,voltage"},
                     "tage-geometry");
    // The mode flag is meaningless without a multi-axis sweep, and
    // only knows product/descent.
    expectUsageError({"explore", "--axis=predictor",
                      "--multi-axis-mode=descent"},
                     "without --multi-axis");
    expectUsageError({"explore",
                      "--multi-axis=predictor,way-predictor",
                      "--multi-axis-mode=random"},
                     "product|descent");
    // A geometry grid over a mechanism the base config disables would
    // score identical points: rejected before any simulation.
    expectUsageError({"explore",
                      "--multi-axis=tage-geometry,way-predictor"},
                     "select tage first");
    expectUsageError({"explore",
                      "--multi-axis=stream-geometry,way-predictor"},
                     "stream prefetcher");
}

TEST(CliRun, ArenaFlagContradictionsAreContainedErrors)
{
    // Spilling with capture/replay disabled has nothing to spill.
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"stat", "505.mcf_r",
                                "--trace-arena-mb=0",
                                "--arena-spill-dir=/tmp/spec17_spill"}),
                         out, err),
              2);
    EXPECT_NE(err.str().find("contradictory"), std::string::npos)
        << err.str();
    EXPECT_NE(err.str().find("nothing to spill"), std::string::npos);
}

TEST(CliRun, ExploreRunsAMultiAxisCrossProduct)
{
    const std::string csv_path =
        std::string(::testing::TempDir()) + "/cli_explore_cross.csv";
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"explore",
                                "--multi-axis=way-predictor,predictor",
                                "--suite=cpu2006", "--size=test",
                                "--sample=2000", "--warmup=500",
                                "--no-cache", "--jobs=4",
                                ("--explore-out=" + csv_path)
                                    .c_str()}),
                         out, err),
              0)
        << err.str();
    EXPECT_NE(out.str().find("design-space sweep of axis "
                             "'way-predictor+predictor (cross)'"),
              std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("knee:"), std::string::npos);
    // Row-major product: combined labels appear in the table.
    for (const char *label : {"none,tage", "mru,bimodal",
                              "utag,tournament"})
        EXPECT_NE(out.str().find(label), std::string::npos) << label;
    std::remove(csv_path.c_str());
}

TEST(CliRun, ExploreRunsACoordinateDescent)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"explore",
                                "--multi-axis=way-predictor,"
                                "l2-prefetcher",
                                "--multi-axis-mode=descent",
                                "--suite=cpu2006", "--size=test",
                                "--sample=2000", "--warmup=500",
                                "--no-cache", "--jobs=4"}),
                         out, err),
              0)
        << err.str();
    // One folded pick per stage, in axis order.
    EXPECT_NE(out.str().find("descent step 1 (way-predictor):"),
              std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("descent step 2 (l2-prefetcher):"),
              std::string::npos);
}

TEST(CliRun, ExploreSweepsOneAxisAndMarksTheKnee)
{
    const std::string csv_path =
        std::string(::testing::TempDir()) + "/cli_explore.csv";
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"explore", "--axis=way-predictor",
                                "--suite=cpu2006", "--size=test",
                                "--sample=2000", "--warmup=500",
                                "--no-cache", "--jobs=4",
                                ("--explore-out=" + csv_path)
                                    .c_str()}),
                         out, err),
              0)
        << err.str();
    EXPECT_NE(out.str().find(
                  "design-space sweep of axis 'way-predictor'"),
              std::string::npos);
    EXPECT_NE(out.str().find("knee:"), std::string::npos);
    // Every axis point appears in the rendered table.
    for (const char *label : {"none", "mru", "utag"})
        EXPECT_NE(out.str().find(label), std::string::npos) << label;
    const std::string csv = fileBytes(csv_path);
    EXPECT_NE(csv.find("SSE (pp^2)"), std::string::npos);
    std::remove(csv_path.c_str());
}

TEST(CliRun, UsageDocumentsUarchAndExploreFlags)
{
    const std::string text = usage();
    for (const char *needle :
         {"--l2-prefetcher", "--way-predictor", "--way-penalty",
          "--stream-degree", "--stream-distance", "--tage-tables",
          "--axis", "--multi-axis", "--multi-axis-mode",
          "--trace-arena-mb", "--arena-spill-dir", "--explore-out",
          "uarch mechanisms", "design-space exploration",
          "trace capture/replay"})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(CliRun, ValidateReportsDeviations)
{
    std::ostringstream out, err;
    EXPECT_EQ(runCommand(parse({"validate", "--suite=cpu2006",
                                "--sample=60000", "--warmup=20000",
                                "--tolerance=100"}),
                         out, err),
              0);
    EXPECT_NE(out.str().find("deviate more than"), std::string::npos);
    EXPECT_NE(out.str().find("429.mcf"), std::string::npos);
}

} // namespace
} // namespace cli
} // namespace spec17
