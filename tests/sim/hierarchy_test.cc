#include "sim/hierarchy.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace sim {
namespace {

HierarchyConfig
smallConfig()
{
    HierarchyConfig config;
    config.l1d = {"l1d", 1024, 2, 64, ReplacementPolicy::Lru, 4};
    config.l1i = {"l1i", 1024, 2, 64, ReplacementPolicy::Lru, 1};
    config.l2 = {"l2", 4096, 4, 64, ReplacementPolicy::Lru, 12};
    config.l3 = {"l3", 16384, 4, 64, ReplacementPolicy::Lru, 38};
    return config;
}

TEST(Hierarchy, MissPathFillsAllLevels)
{
    CacheHierarchy hierarchy(smallConfig());
    EXPECT_EQ(hierarchy.accessData(0x1000, false), HitLevel::Memory);
    // Now resident everywhere.
    EXPECT_EQ(hierarchy.accessData(0x1000, false), HitLevel::L1);
    EXPECT_EQ(hierarchy.l1d().stats().hits, 1u);
    EXPECT_EQ(hierarchy.l2().stats().misses, 1u);
    EXPECT_EQ(hierarchy.l3().stats().misses, 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CacheHierarchy hierarchy(smallConfig());
    // L1d: 8 sets x 2 ways. Fill set 0 with 3 lines (stride 512).
    hierarchy.accessData(0 * 512, false);
    hierarchy.accessData(1 * 512, false);
    hierarchy.accessData(2 * 512, false); // evicts line 0 from L1
    EXPECT_EQ(hierarchy.accessData(0 * 512, false), HitLevel::L2);
}

TEST(Hierarchy, LatencyOrderingIsMonotone)
{
    CacheHierarchy hierarchy(smallConfig());
    EXPECT_LT(hierarchy.latencyOf(HitLevel::L1),
              hierarchy.latencyOf(HitLevel::L2));
    EXPECT_LT(hierarchy.latencyOf(HitLevel::L2),
              hierarchy.latencyOf(HitLevel::L3));
    EXPECT_LT(hierarchy.latencyOf(HitLevel::L3),
              hierarchy.latencyOf(HitLevel::Memory));
}

TEST(Hierarchy, InstAndDataPathsAreSeparateL1s)
{
    CacheHierarchy hierarchy(smallConfig());
    hierarchy.accessInst(0x2000);
    // Same address on the data side still misses L1D (but hits L2,
    // which the fetch filled).
    EXPECT_EQ(hierarchy.accessData(0x2000, false), HitLevel::L2);
}

TEST(Hierarchy, SharedL3IsVisibleAcrossHierarchies)
{
    const HierarchyConfig config = smallConfig();
    auto l3 = CacheHierarchy::makeSharedL3(config);
    CacheHierarchy core0(config, l3);
    CacheHierarchy core1(config, l3);

    core0.accessData(0x4000, false); // fills shared L3
    // Core 1 misses its private L1/L2 but hits the shared L3.
    EXPECT_EQ(core1.accessData(0x4000, false), HitLevel::L3);
}

TEST(Hierarchy, SharedL3ContentionEvictsNeighborData)
{
    HierarchyConfig config = smallConfig();
    auto l3 = CacheHierarchy::makeSharedL3(config);
    CacheHierarchy core0(config, l3);
    CacheHierarchy core1(config, l3);

    core0.accessData(0x0, false);
    // Core 1 streams 4x the L3 capacity, evicting core 0's line.
    for (std::uint64_t addr = 0x100000; addr < 0x100000 + 4 * 16384;
         addr += 64) {
        core1.accessData(addr, false);
    }
    // Also push it out of core 0's private L1/L2 via conflict misses
    // is not needed -- just verify the L3 itself lost the line.
    EXPECT_FALSE(l3->probe(0x0));
}

TEST(Hierarchy, NextLinePrefetcherCutsSequentialMisses)
{
    HierarchyConfig without = smallConfig();
    HierarchyConfig with = smallConfig();
    with.prefetcher = "next-line";

    CacheHierarchy plain(without);
    CacheHierarchy prefetching(with);
    std::uint64_t plain_misses = 0, pf_misses = 0;
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 8) {
        plain_misses += plain.accessData(addr, false) != HitLevel::L1;
        pf_misses +=
            prefetching.accessData(addr, false) != HitLevel::L1;
    }
    EXPECT_LT(pf_misses, plain_misses / 2);
    EXPECT_GT(prefetching.prefetcher()->issued(), 0u);
}

TEST(Hierarchy, StridePrefetcherLearnsLargeStrides)
{
    HierarchyConfig with = smallConfig();
    with.prefetcher = "stride";
    CacheHierarchy prefetching(with);
    HierarchyConfig without = smallConfig();
    CacheHierarchy plain(without);

    // Stride of 192 bytes (3 lines) from one PC: next-line would not
    // help, stride prefetch should.
    std::uint64_t pf_misses = 0, plain_misses = 0;
    for (std::uint64_t i = 0; i < 2000; ++i) {
        const std::uint64_t addr = 0x100000 + i * 192;
        pf_misses +=
            prefetching.accessData(addr, false, 0x4000) != HitLevel::L1;
        plain_misses +=
            plain.accessData(addr, false, 0x4000) != HitLevel::L1;
    }
    EXPECT_LT(pf_misses, plain_misses / 2);
}

TEST(Hierarchy, HitLevelNames)
{
    EXPECT_EQ(hitLevelName(HitLevel::L1), "L1");
    EXPECT_EQ(hitLevelName(HitLevel::Memory), "memory");
}

} // namespace
} // namespace sim
} // namespace spec17
