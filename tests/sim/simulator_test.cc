#include "sim/simulator.hh"

#include <gtest/gtest.h>

#include "sim/multicore.hh"
#include "trace/kernels.hh"
#include "trace/synthetic.hh"

namespace spec17 {
namespace sim {
namespace {

using counters::PerfEvent;

SystemConfig
machine()
{
    return SystemConfig::haswellXeonE52650Lv3();
}

TEST(Simulator, CountsEveryRetiredOp)
{
    trace::StreamKernel kernel(64 * 1024, 1000, true);
    CpuSimulator sim(machine());
    const SimResult result = sim.run(kernel);
    EXPECT_EQ(result.counters.get(PerfEvent::InstRetiredAny), 4000u);
    EXPECT_EQ(result.counters.get(PerfEvent::UopsRetiredAll), 4000u);
    EXPECT_EQ(result.counters.get(PerfEvent::MemUopsRetiredAllLoads),
              1000u);
    EXPECT_EQ(result.counters.get(PerfEvent::MemUopsRetiredAllStores),
              1000u);
    EXPECT_EQ(result.counters.get(PerfEvent::BrInstExecAllBranches),
              1000u);
    EXPECT_EQ(result.counters.get(PerfEvent::BrInstExecAllConditional),
              1000u);
}

TEST(Simulator, LoadHitMissCountersArePartition)
{
    trace::SyntheticTraceParams params;
    params.numOps = 100000;
    params.regions = {
        {trace::AccessPattern::Random, 8 * 1024 * 1024, 64, 1.0, 1.0},
    };
    trace::SyntheticTraceGenerator gen(params);
    CpuSimulator sim(machine());
    const SimResult result = sim.run(gen);

    const auto loads =
        result.counters.get(PerfEvent::MemUopsRetiredAllLoads);
    const auto l1h =
        result.counters.get(PerfEvent::MemLoadUopsRetiredL1Hit);
    const auto l1m =
        result.counters.get(PerfEvent::MemLoadUopsRetiredL1Miss);
    const auto l2h =
        result.counters.get(PerfEvent::MemLoadUopsRetiredL2Hit);
    const auto l2m =
        result.counters.get(PerfEvent::MemLoadUopsRetiredL2Miss);
    const auto l3h =
        result.counters.get(PerfEvent::MemLoadUopsRetiredL3Hit);
    const auto l3m =
        result.counters.get(PerfEvent::MemLoadUopsRetiredL3Miss);

    EXPECT_EQ(l1h + l1m, loads);
    EXPECT_EQ(l2h + l2m, l1m);
    EXPECT_EQ(l3h + l3m, l2m);
    EXPECT_GT(l1m, 0u);
}

TEST(Simulator, CacheResidentWorkloadHasHighHitRate)
{
    // 16 KiB working set inside a 32 KiB L1: after warmup, near-zero
    // miss rate.
    trace::StreamKernel kernel(16 * 1024, 50000);
    CpuSimulator sim(machine());
    const SimResult result = sim.run(kernel);
    const double l1_miss_rate =
        double(result.counters.get(PerfEvent::MemLoadUopsRetiredL1Miss))
        / double(result.counters.get(PerfEvent::MemUopsRetiredAllLoads));
    EXPECT_LT(l1_miss_rate, 0.01);
}

TEST(Simulator, StreamingMissRateMatchesLineGeometry)
{
    // Sequential 8 B loads over a >L3 array: one compulsory miss per
    // 64 B line -> L1 miss rate ~= 1/8.
    trace::StreamKernel kernel(64 * 1024 * 1024, 300000);
    CpuSimulator sim(machine());
    const SimResult result = sim.run(kernel);
    const double l1_miss_rate =
        double(result.counters.get(PerfEvent::MemLoadUopsRetiredL1Miss))
        / double(result.counters.get(PerfEvent::MemUopsRetiredAllLoads));
    EXPECT_NEAR(l1_miss_rate, 1.0 / 8.0, 0.01);
}

TEST(Simulator, PointerChaseIpcIsFarBelowStreaming)
{
    trace::StreamKernel stream(64 * 1024 * 1024, 200000);
    trace::PointerChaseKernel chase(64 * 1024 * 1024, 50000);
    CpuSimulator sim_stream(machine());
    CpuSimulator sim_chase(machine());
    const double stream_ipc = sim_stream.run(stream).ipc();
    const double chase_ipc = sim_chase.run(chase).ipc();
    EXPECT_GT(stream_ipc, 4 * chase_ipc);
    EXPECT_LT(chase_ipc, 0.25);
}

TEST(Simulator, RssTracksTouchedPagesVszTracksReserve)
{
    trace::SyntheticTraceParams params;
    params.numOps = 50000;
    params.extraVirtualBytes = 64 * 1024 * 1024;
    params.regions = {
        {trace::AccessPattern::Sequential, 1024 * 1024, 64, 1.0, 1.0},
    };
    trace::SyntheticTraceGenerator gen(params);
    CpuSimulator sim(machine());
    const SimResult result = sim.run(gen);
    const auto rss = result.counters.get(PerfEvent::RssBytes);
    const auto vsz = result.counters.get(PerfEvent::VszBytes);
    EXPECT_GT(rss, 0u);
    EXPECT_GE(vsz, rss);
    EXPECT_GE(vsz, params.extraVirtualBytes);
    // Sequential sweep of 50k ops touches ~ loads*8B of the region.
    EXPECT_LT(rss, 2 * 1024 * 1024u);
}

TEST(Simulator, MispredictCounterMatchesBranchUnit)
{
    trace::SyntheticTraceParams params;
    params.numOps = 100000;
    params.hardBranchFrac = 0.5;
    params.regions = {
        {trace::AccessPattern::Sequential, 64 * 1024, 64, 1.0, 1.0},
    };
    trace::SyntheticTraceGenerator gen(params);
    CpuSimulator sim(machine());
    const SimResult result = sim.run(gen);
    EXPECT_EQ(result.counters.get(PerfEvent::BrMispExecAllBranches),
              sim.branchUnit().totals().mispredicted);
    EXPECT_GT(result.counters.get(PerfEvent::BrMispExecAllBranches), 0u);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    trace::SyntheticTraceParams params;
    params.numOps = 50000;
    params.regions = {
        {trace::AccessPattern::Random, 2 * 1024 * 1024, 64, 1.0, 1.0},
    };
    trace::SyntheticTraceGenerator gen1(params);
    trace::SyntheticTraceGenerator gen2(params);
    CpuSimulator sim1(machine(), 7);
    CpuSimulator sim2(machine(), 7);
    const SimResult r1 = sim1.run(gen1);
    const SimResult r2 = sim2.run(gen2);
    EXPECT_DOUBLE_EQ(r1.cycles, r2.cycles);
    for (std::size_t i = 0; i < counters::kNumPerfEvents; ++i) {
        const auto event = static_cast<PerfEvent>(i);
        EXPECT_EQ(r1.counters.get(event), r2.counters.get(event))
            << counters::perfEventName(event);
    }
}

TEST(Simulator, IpcHelperMatchesCounters)
{
    trace::StreamKernel kernel(16 * 1024, 10000);
    CpuSimulator sim(machine());
    const SimResult result = sim.run(kernel);
    const double expect =
        double(result.counters.get(PerfEvent::InstRetiredAny))
        / double(result.counters.get(PerfEvent::CpuClkUnhaltedRefTsc));
    EXPECT_DOUBLE_EQ(result.ipc(), expect);
    EXPECT_GT(result.seconds, 0.0);
}

TEST(Multicore, AggregatesCountersAcrossCores)
{
    trace::SyntheticTraceParams params;
    params.numOps = 20000;
    params.regions = {
        {trace::AccessPattern::Sequential, 256 * 1024, 64, 1.0, 1.0},
    };
    std::vector<std::shared_ptr<trace::TraceSource>> sources;
    for (int t = 0; t < 4; ++t) {
        auto thread_params = params;
        thread_params.seed = 100 + t;
        sources.push_back(std::make_shared<trace::SyntheticTraceGenerator>(
            thread_params));
    }
    MulticoreSimulator multicore(machine(), 4);
    const SimResult result = multicore.run(sources);
    EXPECT_EQ(result.counters.get(PerfEvent::InstRetiredAny), 80000u);
    EXPECT_GT(result.cycles, 0.0);
}

TEST(Multicore, SharedL3ContentionLowersIpc)
{
    // Shrink the L3 to 4 MiB so one thread's 3 MiB heap fits (and can
    // be warmed within the test) while four private heaps thrash it.
    SystemConfig config = machine();
    config.hierarchy.l3.sizeBytes = 4 * 1024 * 1024;
    config.hierarchy.l3.assoc = 16;

    auto make_sources = [](int n) {
        std::vector<std::shared_ptr<trace::TraceSource>> sources;
        for (int t = 0; t < n; ++t) {
            trace::SyntheticTraceParams params;
            params.numOps = 400000;
            params.seed = 50 + t;
            params.loadFrac = 0.4;
            params.addressOffset =
                std::uint64_t(t) * 64 * 1024 * 1024;
            params.regions = {{trace::AccessPattern::Random,
                               3 * 1024 * 1024, 64, 1.0, 1.0}};
            sources.push_back(
                std::make_shared<trace::SyntheticTraceGenerator>(params));
        }
        return sources;
    };

    MulticoreSimulator solo(config, 1);
    const double solo_ipc = solo.run(make_sources(1)).ipc();
    MulticoreSimulator quad(config, 4);
    const double quad_ipc = quad.run(make_sources(4)).ipc();
    // Aggregate IPC per the paper's counting (instr / summed cycles)
    // must drop under shared-L3 contention.
    EXPECT_LT(quad_ipc, solo_ipc * 0.8);
}

TEST(MulticoreDeathTest, SourceCountMustMatchCores)
{
    MulticoreSimulator multicore(machine(), 2);
    std::vector<std::shared_ptr<trace::TraceSource>> one = {
        std::make_shared<trace::StreamKernel>(1024, 10),
    };
    EXPECT_DEATH(multicore.run(one), "one trace per core");
}

} // namespace
} // namespace sim
} // namespace spec17
