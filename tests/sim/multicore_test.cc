/**
 * @file
 * Shared-L3 multicore semantics added for the co-run engine:
 * per-context attribution (hits, misses, inflicted/suffered
 * evictions, occupancy), CAT-style way partitions, the per-context
 * runEach() view, warmup exclusion, and determinism of all of it.
 */

#include "sim/multicore.hh"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "trace/synthetic.hh"

namespace spec17 {
namespace sim {
namespace {

using counters::PerfEvent;

/** Small L3 so a few hundred KiB of heap creates real contention. */
SystemConfig
smallL3Machine()
{
    SystemConfig config = SystemConfig::haswellXeonE52650Lv3();
    config.hierarchy.l3.sizeBytes = 512 * 1024;
    config.hierarchy.l3.assoc = 8;
    return config;
}

/** One random-access source per core, in disjoint address spaces. */
std::vector<std::shared_ptr<trace::TraceSource>>
makeSources(unsigned cores, std::uint64_t ops,
            std::uint64_t heap_bytes = 384 * 1024)
{
    std::vector<std::shared_ptr<trace::TraceSource>> sources;
    for (unsigned t = 0; t < cores; ++t) {
        trace::SyntheticTraceParams params;
        params.numOps = ops;
        params.seed = 40 + t;
        params.loadFrac = 0.4;
        params.addressOffset = std::uint64_t(t) * 64 * 1024 * 1024;
        params.regions = {
            {trace::AccessPattern::Random, heap_bytes, 64, 1.0, 1.0},
        };
        sources.push_back(
            std::make_shared<trace::SyntheticTraceGenerator>(params));
    }
    return sources;
}

TEST(MulticoreCorun, RunEachIsDeterministicAcrossRuns)
{
    std::vector<SimResult> first, second;
    for (std::vector<SimResult> *out : {&first, &second}) {
        MulticoreSimulator machine(smallL3Machine(), 2, 7);
        *out = machine.runEach(makeSources(2, 30000), 5000, 10000);
    }
    ASSERT_EQ(first.size(), 2u);
    ASSERT_EQ(second.size(), 2u);
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_DOUBLE_EQ(first[c].cycles, second[c].cycles);
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            EXPECT_EQ(first[c].counters.get(event),
                      second[c].counters.get(event))
                << "core " << c << " " << perfEventName(event);
        }
    }
}

TEST(MulticoreCorun, WarmupOpsAreExcludedFromMeasurement)
{
    MulticoreSimulator machine(smallL3Machine(), 2, 7);
    const auto parts =
        machine.runEach(makeSources(2, 30000), 5000, 10000);
    for (unsigned c = 0; c < 2; ++c) {
        // 30000 ops per core, 10000 of them warmup: exactly the
        // 20000-op measured window lands in the counters.
        EXPECT_EQ(parts[c].counters.get(PerfEvent::InstRetiredAny),
                  20000u)
            << "core " << c;
        EXPECT_GT(parts[c].cycles, 0.0);
    }
}

TEST(MulticoreCorun, ContextStatsSumToSharedCacheTotals)
{
    MulticoreSimulator machine(smallL3Machine(), 3, 7);
    machine.runEach(makeSources(3, 40000), 5000);

    const SetAssocCache &l3 = machine.sharedL3();
    ASSERT_EQ(l3.numContexts(), 3u);
    std::uint64_t hits = 0, misses = 0, evictions = 0, writebacks = 0;
    std::uint64_t inflicted = 0, suffered = 0, occupancy = 0;
    for (unsigned c = 0; c < 3; ++c) {
        const CacheContextStats &stats = l3.contextStats(c);
        hits += stats.hits;
        misses += stats.misses;
        evictions += stats.evictions;
        writebacks += stats.writebacks;
        inflicted += stats.evictionsInflicted;
        suffered += stats.evictionsSuffered;
        occupancy += l3.contextOccupancy(c);
    }
    // Attribution is a partition of the shared totals: every access
    // and every eviction is charged to exactly one context.
    EXPECT_EQ(hits, l3.stats().hits);
    EXPECT_EQ(misses, l3.stats().misses);
    EXPECT_EQ(evictions, l3.stats().evictions);
    EXPECT_EQ(writebacks, l3.stats().writebacks);
    // A cross-context eviction is one context's infliction and
    // another's suffering -- the two books must balance.
    EXPECT_EQ(inflicted, suffered);
    EXPECT_GT(inflicted, 0u) << "workload too small to contend";
    // Owned lines can never exceed the cache's capacity.
    const auto &config = l3.config();
    EXPECT_LE(occupancy, config.numSets() * config.assoc);
    EXPECT_GT(occupancy, 0u);
}

TEST(MulticoreCorun, WayPartitionConfinesOccupancy)
{
    MulticoreSimulator machine(smallL3Machine(), 2, 7);
    // Context 0 gets 2 of 8 ways, context 1 the other 6.
    machine.setWayPartition({0x03, 0xfc});
    machine.runEach(makeSources(2, 40000), 5000);

    const SetAssocCache &l3 = machine.sharedL3();
    // Allocations can only claim ways in the context's mask, so
    // occupancy is bounded by sets * popcount(mask).
    EXPECT_LE(l3.contextOccupancy(0), l3.config().numSets() * 2);
    EXPECT_LE(l3.contextOccupancy(1), l3.config().numSets() * 6);
    // With disjoint masks no context can victimize the other.
    EXPECT_EQ(l3.contextStats(0).evictionsSuffered, 0u);
    EXPECT_EQ(l3.contextStats(1).evictionsSuffered, 0u);
}

TEST(MulticoreCorun, PartitionChangesResults)
{
    // Masks are semantics, not observation: squeezing a context into
    // one way must change its cycle count. (This is why masks belong
    // in co-run config identity -- via the group name.)
    MulticoreSimulator free_machine(smallL3Machine(), 2, 7);
    const auto free_parts =
        free_machine.runEach(makeSources(2, 40000), 5000);

    MulticoreSimulator squeezed(smallL3Machine(), 2, 7);
    squeezed.setWayPartition({0x01, 0xfe});
    const auto squeezed_parts =
        squeezed.runEach(makeSources(2, 40000), 5000);

    EXPECT_GT(squeezed_parts[0].cycles, free_parts[0].cycles);
}

TEST(MulticoreCorun, RunMergesRunEachParts)
{
    // run() is the perf-stat view of runEach(): events sum across
    // contexts and cycles take the slowest context (wall time).
    const auto parts = [] {
        MulticoreSimulator machine(smallL3Machine(), 2, 7);
        return machine.runEach(makeSources(2, 30000), 5000, 5000);
    }();
    const SimResult merged = [] {
        MulticoreSimulator machine(smallL3Machine(), 2, 7);
        return machine.run(makeSources(2, 30000), 5000, 5000);
    }();

    EXPECT_EQ(merged.counters.get(PerfEvent::InstRetiredAny),
              parts[0].counters.get(PerfEvent::InstRetiredAny)
                  + parts[1].counters.get(PerfEvent::InstRetiredAny));
    EXPECT_EQ(merged.counters.get(PerfEvent::MemLoadUopsRetiredL3Miss),
              parts[0].counters.get(PerfEvent::MemLoadUopsRetiredL3Miss)
                  + parts[1].counters.get(
                      PerfEvent::MemLoadUopsRetiredL3Miss));
}

TEST(MulticoreCorunDeathTest, CoreIndexOutOfRangeNamesTheBounds)
{
    MulticoreSimulator machine(smallL3Machine(), 2, 7);
    EXPECT_DEATH(machine.core(2), "valid indices 0\\.\\.1");
    EXPECT_DEATH(machine.mutableCore(5), "core index 5");
}

TEST(MulticoreCorunDeathTest, IllegalPartitionMasksPanic)
{
    MulticoreSimulator machine(smallL3Machine(), 2, 7);
    EXPECT_DEATH(machine.setWayPartition({0x03}), "one mask per core");
    EXPECT_DEATH(machine.setWayPartition({0x03, 0x00}), "");
    // Bit 8 names a way beyond the 8-way associativity.
    EXPECT_DEATH(machine.setWayPartition({0x03, 0x100}), "");
}

} // namespace
} // namespace sim
} // namespace spec17
