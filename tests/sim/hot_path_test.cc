/**
 * @file
 * Batched fast lane vs the per-op reference lane: CpuSimulator::step()
 * must leave the machine in a bit-identical state to stepUnbatched()
 * -- every perf counter, cache stat, core cycle count and footprint
 * byte -- at any batch size, under every configuration that exercises
 * a memo-legality edge (TLB walks, prefetchers, random replacement,
 * dirty-line stores), and when the two lanes are mixed mid-run.
 */

#include "sim/simulator.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>

#include "counters/perf_event.hh"
#include "trace/kernels.hh"
#include "trace/synthetic.hh"

namespace spec17 {
namespace sim {
namespace {

using counters::PerfEvent;

SystemConfig
machine()
{
    return SystemConfig::haswellXeonE52650Lv3();
}

trace::SyntheticTraceParams
mixedParams(std::uint64_t num_ops = 120000)
{
    trace::SyntheticTraceParams p;
    p.numOps = num_ops;
    p.seed = 7;
    p.loadFrac = 0.25;
    p.storeFrac = 0.10;
    p.branchFrac = 0.15;
    p.regions = {
        // Sequential region drives the same-line memo; the random and
        // pointer-chase regions keep L2/L3 replacement state busy.
        {trace::AccessPattern::Sequential, 128 * 1024, 64, 1.0, 1.0},
        {trace::AccessPattern::Random, 8 * 1024 * 1024, 64, 1.0, 1.0},
        {trace::AccessPattern::PointerChase, 1024 * 1024, 64, 1.0, 0.5},
    };
    return p;
}

void
expectCacheStatsEqual(const CacheStats &a, const CacheStats &b,
                      const char *which)
{
    EXPECT_EQ(a.hits, b.hits) << which;
    EXPECT_EQ(a.misses, b.misses) << which;
    EXPECT_EQ(a.evictions, b.evictions) << which;
    EXPECT_EQ(a.writebacks, b.writebacks) << which;
    EXPECT_EQ(a.prefetchFills, b.prefetchFills) << which;
    EXPECT_EQ(a.prefetchUseful, b.prefetchUseful) << which;
    EXPECT_EQ(a.prefetchUsefulByL2, b.prefetchUsefulByL2) << which;
    EXPECT_EQ(a.wayPredictions, b.wayPredictions) << which;
    EXPECT_EQ(a.wayMispredicts, b.wayMispredicts) << which;
    EXPECT_EQ(a.wayPenaltyCycles, b.wayPenaltyCycles) << which;
}

void
expectSimsIdentical(const CpuSimulator &batched,
                    const CpuSimulator &reference)
{
    const counters::CounterSet a = batched.snapshot();
    const counters::CounterSet b = reference.snapshot();
    for (std::size_t i = 0; i < counters::kNumPerfEvents; ++i) {
        const auto event = static_cast<PerfEvent>(i);
        EXPECT_EQ(a.get(event), b.get(event))
            << counters::perfEventName(event);
    }
    EXPECT_DOUBLE_EQ(batched.core().cycles(), reference.core().cycles());
    EXPECT_EQ(batched.footprint().rssBytes(),
              reference.footprint().rssBytes());
    expectCacheStatsEqual(batched.hierarchy().l1i().stats(),
                          reference.hierarchy().l1i().stats(), "l1i");
    expectCacheStatsEqual(batched.hierarchy().l1d().stats(),
                          reference.hierarchy().l1d().stats(), "l1d");
    expectCacheStatsEqual(batched.hierarchy().l2().stats(),
                          reference.hierarchy().l2().stats(), "l2");
    expectCacheStatsEqual(batched.hierarchy().l3().stats(),
                          reference.hierarchy().l3().stats(), "l3");
}

/**
 * Runs the same synthetic workload through a batched simulator (batch
 * size @p batch_ops) and a reference simulator, stepping both in the
 * uneven chunk sizes the runner produces (warmup, then sampler-capped
 * chunks), and requires identical final state and per-chunk op
 * counts.
 */
void
expectLaneIdentity(const SystemConfig &config,
                   const trace::SyntheticTraceParams &params,
                   std::size_t batch_ops)
{
    SCOPED_TRACE(::testing::Message() << "batch_ops=" << batch_ops);
    trace::SyntheticTraceGenerator gen_a(params);
    trace::SyntheticTraceGenerator gen_b(params);
    CpuSimulator batched(config, 42);
    batched.setBatchOps(batch_ops);
    CpuSimulator reference(config, 42);

    // Warmup chunk, then odd-sized chunks (9973 is prime, so batch
    // boundaries straddle chunk boundaries for every batch size > 1).
    std::uint64_t chunk = 20000;
    while (true) {
        const std::uint64_t got_a = batched.step(gen_a, chunk);
        const std::uint64_t got_b = reference.stepUnbatched(gen_b, chunk);
        ASSERT_EQ(got_a, got_b);
        if (got_a < chunk)
            break;
        chunk = 9973;
    }
    expectSimsIdentical(batched, reference);
}

TEST(HotPath, BatchedLaneMatchesReferenceAtManyBatchSizes)
{
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{256}})
        expectLaneIdentity(machine(), mixedParams(), batch);
}

TEST(HotPath, BatchedLaneMatchesReferenceWithTlb)
{
    SystemConfig config = machine();
    config.enableTlb = true;
    expectLaneIdentity(config, mixedParams(), 256);
    expectLaneIdentity(config, mixedParams(), 7);
}

TEST(HotPath, BatchedLaneMatchesReferenceWithPrefetcher)
{
    // A prefetcher disables the same-line data memo (prefetch fills
    // can evict any L1D line and the prefetcher must observe every
    // load); the lanes must still agree exactly.
    for (const char *kind : {"stride", "next-line"}) {
        SCOPED_TRACE(kind);
        SystemConfig config = machine();
        config.hierarchy.prefetcher = kind;
        expectLaneIdentity(config, mixedParams(), 256);
    }
}

TEST(HotPath, BatchedLaneMatchesReferenceWithTage)
{
    // TAGE carries long global history through the batched branch
    // pass; the fused predictAndUpdate must keep the lanes identical.
    SystemConfig config = machine();
    config.branchPredictor = "tage";
    expectLaneIdentity(config, mixedParams(), 256);
    expectLaneIdentity(config, mixedParams(), 7);
}

TEST(HotPath, BatchedLaneMatchesReferenceWithStreamPrefetchers)
{
    // Stream at L1D disables the same-line data memo; stream in the
    // L2 slot keeps it legal. Both placements must agree across
    // lanes, including the prefetch-useful owner-lane stats.
    SystemConfig l1_stream = machine();
    l1_stream.hierarchy.prefetcher = "stream";
    expectLaneIdentity(l1_stream, mixedParams(), 256);

    SystemConfig l2_stream = machine();
    l2_stream.hierarchy.l2Prefetcher = "stream";
    expectLaneIdentity(l2_stream, mixedParams(), 256);
}

TEST(HotPath, BatchedLaneMatchesReferenceWithWayPrediction)
{
    // MRU keeps the data memo legal: a memo-skipped load repeat is a
    // penalty-free correct prediction, bulk-credited after the batch.
    // Utag disables the memo instead. Either way every way-prediction
    // counter and penalty cycle must match the reference lane.
    for (const WayPredictor predictor :
         {WayPredictor::Mru, WayPredictor::Utag}) {
        SCOPED_TRACE(wayPredictorName(predictor));
        SystemConfig config = machine();
        config.hierarchy.l1d.wayPredictor = predictor;
        expectLaneIdentity(config, mixedParams(), 256);
        expectLaneIdentity(config, mixedParams(), 7);
    }
}

TEST(HotPath, BatchedLaneMatchesReferenceWithRandomReplacement)
{
    // Random replacement draws from the cache's RNG on every miss, so
    // any divergence in miss order or count desyncs the stream and
    // cascades -- the strictest ordering check available.
    SystemConfig config = machine();
    config.hierarchy.l1d.policy = ReplacementPolicy::Random;
    config.hierarchy.l2.policy = ReplacementPolicy::Random;
    expectLaneIdentity(config, mixedParams(), 256);
    expectLaneIdentity(config, mixedParams(), 1);
}

TEST(HotPath, BatchedLaneMatchesReferenceStoreHeavy)
{
    // Store-dominated sequential traffic exercises the dirty-line
    // memo rule: a write may only be skipped when the memo'd line is
    // already dirty.
    trace::SyntheticTraceParams params = mixedParams();
    params.loadFrac = 0.10;
    params.storeFrac = 0.40;
    expectLaneIdentity(machine(), params, 256);
    expectLaneIdentity(machine(), params, 7);
}

TEST(HotPath, MixedLanesMatchReference)
{
    // Switching lanes mid-run (as a tool flipping unbatchedStepping
    // between steps would) must not perturb results: the memos are
    // invalidated on every lane switch.
    const trace::SyntheticTraceParams params = mixedParams();
    trace::SyntheticTraceGenerator gen_a(params);
    trace::SyntheticTraceGenerator gen_b(params);
    CpuSimulator mixed(machine(), 42);
    CpuSimulator reference(machine(), 42);

    bool use_batched = true;
    while (true) {
        const std::uint64_t got_a =
            use_batched ? mixed.step(gen_a, 15000)
                        : mixed.stepUnbatched(gen_a, 15000);
        const std::uint64_t got_b = reference.stepUnbatched(gen_b, 15000);
        ASSERT_EQ(got_a, got_b);
        if (got_a < 15000)
            break;
        use_batched = !use_batched;
    }
    expectSimsIdentical(mixed, reference);
}

TEST(HotPath, RunMatchesManualReferenceStepping)
{
    // run() rides the batched lane; a manual reference-lane loop plus
    // finish() must produce the identical SimResult.
    const trace::SyntheticTraceParams params = mixedParams(60000);
    trace::SyntheticTraceGenerator gen_a(params);
    trace::SyntheticTraceGenerator gen_b(params);

    CpuSimulator batched(machine(), 42);
    const SimResult via_run = batched.run(gen_a);

    CpuSimulator reference(machine(), 42);
    while (reference.stepUnbatched(gen_b, 4096) == 4096) {
    }
    const SimResult via_steps = reference.finish(gen_b);

    for (std::size_t i = 0; i < counters::kNumPerfEvents; ++i) {
        const auto event = static_cast<PerfEvent>(i);
        EXPECT_EQ(via_run.counters.get(event),
                  via_steps.counters.get(event))
            << counters::perfEventName(event);
    }
    EXPECT_DOUBLE_EQ(via_run.cycles, via_steps.cycles);
    EXPECT_DOUBLE_EQ(via_run.seconds, via_steps.seconds);
}

TEST(HotPath, PrefillInvalidatesTheLineMemos)
{
    // Interleave prefills (which mutate the caches outside the batch
    // path) with batched stepping; the memos must be forgotten each
    // time or the batched lane would skip real accesses.
    const trace::SyntheticTraceParams params = mixedParams();
    trace::SyntheticTraceGenerator gen_a(params);
    trace::SyntheticTraceGenerator gen_b(params);
    CpuSimulator batched(machine(), 42);
    CpuSimulator reference(machine(), 42);

    for (int round = 0; round < 4; ++round) {
        batched.step(gen_a, 20000);
        reference.stepUnbatched(gen_b, 20000);
        batched.prefillData(0x100000, 64 * 1024, HitLevel::L1);
        reference.prefillData(0x100000, 64 * 1024, HitLevel::L1);
    }
    expectSimsIdentical(batched, reference);
}

TEST(HotPath, BatchSizeValidationAndDefaults)
{
    CpuSimulator sim(machine());
    EXPECT_EQ(sim.batchOps(), CpuSimulator::kDefaultBatchOps);
    sim.setBatchOps(7);
    EXPECT_EQ(sim.batchOps(), 7u);
    // Zero is meaningless for a results-invariant knob: clamped to
    // the nearest legal value (with a warning), never a panic.
    sim.setBatchOps(0);
    EXPECT_EQ(sim.batchOps(), 1u);
}

} // namespace
} // namespace sim
} // namespace spec17
