#include "sim/stats_report.hh"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/multicore.hh"
#include "trace/kernels.hh"

namespace spec17 {
namespace sim {
namespace {

TEST(StatsReport, CoversEveryComponent)
{
    trace::StreamKernel kernel(1 << 20, 20000, true);
    SystemConfig config = SystemConfig::haswellXeonE52650Lv3();
    config.hierarchy.prefetcher = "stride";
    config.enableTlb = true;
    CpuSimulator simulator(config);
    simulator.run(kernel);

    std::ostringstream os;
    dumpStats(simulator, os);
    const std::string text = os.str();
    for (const char *needle :
         {"core.retired", "core.ipc", "l1i.miss_rate", "l1d.misses",
          "l2.accesses", "l3.writebacks", "branch.mispredict_rate",
          "branch.conditional.executed", "dtlb.walks",
          "itlb.walk_rate", "footprint.pages",
          "prefetcher.stride.issued"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
    // gem5 idiom: every line carries a '#' description.
    std::istringstream lines(text);
    std::string one;
    while (std::getline(lines, one))
        EXPECT_NE(one.find('#'), std::string::npos) << one;
}

TEST(StatsReport, ValuesMatchComponentStats)
{
    trace::StreamKernel kernel(64 * 1024, 10000);
    CpuSimulator simulator(SystemConfig::haswellXeonE52650Lv3());
    simulator.run(kernel);

    std::ostringstream os;
    dumpStats(simulator, os);
    const std::string text = os.str();
    // Spot-check one value round-trips exactly.
    const std::string key = "core.retired";
    const auto pos = text.find(key);
    ASSERT_NE(pos, std::string::npos);
    const double reported =
        std::stod(text.substr(pos + key.size(),
                              text.find('#', pos) - pos - key.size()));
    EXPECT_DOUBLE_EQ(reported, double(simulator.core().retired()));
}

TEST(StatsReport, MulticorePrefixesEachCore)
{
    MulticoreSimulator multicore(SystemConfig::haswellXeonE52650Lv3(),
                                 2);
    std::vector<std::shared_ptr<trace::TraceSource>> sources = {
        std::make_shared<trace::StreamKernel>(4096, 1000),
        std::make_shared<trace::StreamKernel>(4096, 1000),
    };
    multicore.run(sources);
    std::ostringstream os;
    dumpStats(multicore, os);
    EXPECT_NE(os.str().find("core0.core.retired"), std::string::npos);
    EXPECT_NE(os.str().find("core1.l1d.misses"), std::string::npos);
}

} // namespace
} // namespace sim
} // namespace spec17
