#include "sim/tlb.hh"

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "trace/kernels.hh"
#include "util/random.hh"

namespace spec17 {
namespace sim {
namespace {

TEST(Tlb, ColdWalkThenL1Hit)
{
    Tlb tlb;
    const TlbOutcome first = tlb.access(0x10000);
    EXPECT_FALSE(first.l1Hit);
    EXPECT_FALSE(first.l2Hit);
    EXPECT_EQ(first.extraLatency, tlb.config().walkLatency);
    const TlbOutcome second = tlb.access(0x10008); // same page
    EXPECT_TRUE(second.l1Hit);
    EXPECT_EQ(second.extraLatency, 0u);
    EXPECT_EQ(tlb.stats().accesses, 2u);
    EXPECT_EQ(tlb.stats().walks, 1u);
}

TEST(Tlb, L2BacksL1Evictions)
{
    TlbConfig config;
    config.l1Entries = 4;
    config.l2Entries = 64;
    Tlb tlb(config);
    // Touch 8 pages: all walk. Then the first page: out of L1 (4
    // entries) but still in L2.
    for (std::uint64_t p = 0; p < 8; ++p)
        tlb.access(p * 4096);
    const TlbOutcome revisit = tlb.access(0);
    EXPECT_FALSE(revisit.l1Hit);
    EXPECT_TRUE(revisit.l2Hit);
    EXPECT_EQ(revisit.extraLatency, config.l2HitLatency);
}

TEST(Tlb, LruKeepsHotPagesResident)
{
    TlbConfig config;
    config.l1Entries = 2;
    config.l2Entries = 4;
    Tlb tlb(config);
    tlb.access(0 * 4096);
    tlb.access(1 * 4096);
    tlb.access(0 * 4096); // touch page 0 -> page 1 is LRU in L1
    tlb.access(2 * 4096); // evicts page 1 from L1
    EXPECT_TRUE(tlb.access(0 * 4096).l1Hit);
    const TlbOutcome page1 = tlb.access(1 * 4096);
    EXPECT_FALSE(page1.l1Hit);
    EXPECT_TRUE(page1.l2Hit);
}

TEST(Tlb, WorkingSetWithinL1NeverWalksAfterWarmup)
{
    Tlb tlb;
    Rng rng(3);
    // 32 pages <= 64-entry L1 TLB.
    for (int i = 0; i < 10000; ++i)
        tlb.access(rng.nextBounded(32) * 4096 + rng.nextBounded(4096));
    EXPECT_EQ(tlb.stats().walks, 32u);
    EXPECT_EQ(tlb.stats().l1Misses, 32u);
}

TEST(Tlb, HugeWorkingSetThrashes)
{
    Tlb tlb;
    Rng rng(5);
    // 64k pages >> 1024-entry L2.
    for (int i = 0; i < 20000; ++i)
        tlb.access(rng.nextBounded(65536) * 4096);
    EXPECT_GT(tlb.stats().walkRate(), 0.9);
}

TEST(Tlb, FlushForgetsEverything)
{
    Tlb tlb;
    tlb.access(0x4000);
    tlb.flushAll();
    const TlbOutcome outcome = tlb.access(0x4000);
    EXPECT_FALSE(outcome.l1Hit);
    EXPECT_FALSE(outcome.l2Hit);
}

TEST(TlbDeathTest, RejectsDegenerateGeometry)
{
    TlbConfig config;
    config.l1Entries = 0;
    EXPECT_DEATH(Tlb{config}, "needs entries");
    config = TlbConfig();
    config.l2Entries = 1;
    EXPECT_DEATH(Tlb{config}, "smaller than L1");
    config = TlbConfig();
    config.pageBytes = 100;
    EXPECT_DEATH(Tlb{config}, "power of two");
}

TEST(TlbIntegration, DisabledByDefaultEnabledCostsLatency)
{
    // Random pointer chase over 512 MiB: far more pages than the TLB
    // covers -> every access walks when the TLB is enabled.
    auto run = [](bool enable) {
        trace::PointerChaseKernel chase(512ull << 20, 20000);
        SystemConfig config = SystemConfig::haswellXeonE52650Lv3();
        config.enableTlb = enable;
        CpuSimulator simulator(config);
        return simulator.run(chase);
    };
    const SimResult off = run(false);
    const SimResult on = run(true);
    EXPECT_EQ(off.counters.get(
                  counters::PerfEvent::DtlbLoadMissesWalk),
              0u);
    EXPECT_GT(on.counters.get(counters::PerfEvent::DtlbLoadMissesWalk),
              15000u);
    EXPECT_GT(on.cycles, off.cycles * 1.05);
}

TEST(TlbIntegration, CacheResidentCodeBarelyWalks)
{
    trace::StreamKernel stream(16 * 1024, 50000);
    SystemConfig config = SystemConfig::haswellXeonE52650Lv3();
    config.enableTlb = true;
    CpuSimulator simulator(config);
    simulator.run(stream);
    EXPECT_LT(simulator.itlb().stats().walkRate(), 0.001);
    EXPECT_LT(simulator.dtlb().stats().walkRate(), 0.001);
}

} // namespace
} // namespace sim
} // namespace spec17
