#include "sim/branch.hh"

#include <gtest/gtest.h>

#include "util/random.hh"

namespace spec17 {
namespace sim {
namespace {

using isa::BranchKind;
using isa::makeBranch;

/** Runs @p n Bernoulli(p) branches at one PC; returns mispredict rate. */
double
bernoulliRate(DirectionPredictor &predictor, double p, int n,
              std::uint64_t seed)
{
    Rng rng(seed);
    int wrong = 0;
    for (int i = 0; i < n; ++i) {
        const bool taken = rng.nextBernoulli(p);
        wrong += predictor.predict(0x4000) != taken;
        predictor.update(0x4000, taken);
    }
    return wrong / static_cast<double>(n);
}

TEST(StaticTaken, AlwaysPredictsTaken)
{
    StaticTakenPredictor predictor;
    EXPECT_TRUE(predictor.predict(0x1000));
    predictor.update(0x1000, false);
    EXPECT_TRUE(predictor.predict(0x1000));
    EXPECT_EQ(predictor.name(), "static-taken");
}

TEST(Bimodal, LearnsBiasedBranches)
{
    BimodalPredictor predictor;
    EXPECT_LT(bernoulliRate(predictor, 0.95, 20000, 1), 0.08);
    BimodalPredictor predictor2;
    EXPECT_LT(bernoulliRate(predictor2, 0.05, 20000, 2), 0.08);
}

TEST(Bimodal, CannotLearnAlternatingPattern)
{
    // T,N,T,N ... defeats a 2-bit counter but not global history.
    BimodalPredictor bimodal;
    GsharePredictor gshare;
    int bimodal_wrong = 0, gshare_wrong = 0;
    for (int i = 0; i < 10000; ++i) {
        const bool taken = (i % 2) == 0;
        bimodal_wrong += bimodal.predict(0x4000) != taken;
        bimodal.update(0x4000, taken);
        gshare_wrong += gshare.predict(0x4000) != taken;
        gshare.update(0x4000, taken);
    }
    EXPECT_GT(bimodal_wrong, 3000);
    EXPECT_LT(gshare_wrong, 200); // learns after warmup
}

TEST(Gshare, LearnsShortPeriodicPatterns)
{
    GsharePredictor predictor;
    int wrong = 0;
    const bool pattern[] = {true, true, false, true, false, false};
    for (int i = 0; i < 12000; ++i) {
        const bool taken = pattern[i % 6];
        wrong += predictor.predict(0x8000) != taken;
        predictor.update(0x8000, taken);
    }
    EXPECT_LT(wrong / 12000.0, 0.05);
}

TEST(Gshare, RandomBranchesMispredictNearHalf)
{
    GsharePredictor predictor;
    const double rate = bernoulliRate(predictor, 0.5, 50000, 3);
    EXPECT_NEAR(rate, 0.5, 0.05);
}

TEST(Tournament, AtLeastAsGoodAsBothComponentsOnMixedLoad)
{
    // Alternating branch at one PC (gshare-friendly) plus a biased
    // branch at another (bimodal-friendly).
    TournamentPredictor tournament;
    Rng rng(4);
    int wrong = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const bool alt_taken = (i % 2) == 0;
        wrong += tournament.predict(0x4000) != alt_taken;
        tournament.update(0x4000, alt_taken);
        const bool biased_taken = rng.nextBernoulli(0.9);
        wrong += tournament.predict(0x8000) != biased_taken;
        tournament.update(0x8000, biased_taken);
    }
    EXPECT_LT(wrong / double(2 * n), 0.10);
}

TEST(Tage, CannotBeFooledByAlternatingPattern)
{
    // T,N,T,N ... defeats the base bimodal table; the tagged
    // history tables pick it up after allocation warmup.
    TagePredictor tage;
    int wrong = 0;
    for (int i = 0; i < 10000; ++i) {
        const bool taken = (i % 2) == 0;
        wrong += tage.predictAndUpdate(0x4000, taken) != taken;
    }
    EXPECT_LT(wrong, 200);
}

TEST(Tage, AllocationOnMispredictLetsTaggedTablesTakeOver)
{
    // Period-4 pattern T,T,T,N at one PC: the base bimodal counter
    // saturates toward taken and keeps missing every fourth branch
    // (a 25% floor), so each miss allocates a tagged entry keyed on
    // the history leading into the N. Once those providers take
    // over, the second half should be near-perfect.
    TageConfig config;
    config.historyTables = 2;
    TagePredictor tage(config);
    BimodalPredictor bimodal;
    int tage_late_wrong = 0, bimodal_late_wrong = 0;
    for (int i = 0; i < 8000; ++i) {
        const bool taken = (i % 4) != 3;
        const bool tage_wrong =
            tage.predictAndUpdate(0x4000, taken) != taken;
        const bool bimodal_wrong = bimodal.predict(0x4000) != taken;
        bimodal.update(0x4000, taken);
        if (i >= 4000) {
            tage_late_wrong += tage_wrong;
            bimodal_late_wrong += bimodal_wrong;
        }
    }
    EXPECT_LT(tage_late_wrong, 40);
    EXPECT_GE(bimodal_late_wrong, 1000); // the 25% bimodal floor
}

TEST(Tage, FusedPredictAndUpdateMatchesTwoCallSequence)
{
    // The batched branch pass relies on predictAndUpdate() being
    // exactly predict() followed by update(); drive both forms with
    // an identical mixed stream and require identical predictions.
    TagePredictor fused;
    TagePredictor sequential;
    Rng rng(11);
    for (int i = 0; i < 50000; ++i) {
        const std::uint64_t pc = 0x1000 + 4 * (i % 37);
        const bool taken = rng.nextBernoulli(0.5);
        const bool a = fused.predictAndUpdate(pc, taken);
        const bool b = sequential.predict(pc);
        sequential.update(pc, taken);
        ASSERT_EQ(a, b) << "diverged at branch " << i;
    }
}

TEST(Tage, HistoryLengthsAreGeometricAndMonotonic)
{
    TageConfig config;
    config.historyTables = 4;
    config.minHistory = 4;
    config.maxHistory = 64;
    TagePredictor tage(config);
    EXPECT_EQ(tage.historyLength(0), 4u);
    EXPECT_EQ(tage.historyLength(3), 64u);
    for (unsigned t = 1; t < config.historyTables; ++t)
        EXPECT_GT(tage.historyLength(t), tage.historyLength(t - 1));
}

TEST(Tage, SingleTableUsesTheShortHistory)
{
    TageConfig config;
    config.historyTables = 1;
    TagePredictor tage(config);
    EXPECT_EQ(tage.historyLength(0), config.minHistory);
    // Still functional as a predictor.
    int wrong = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool taken = (i % 2) == 0;
        wrong += tage.predictAndUpdate(0x4000, taken) != taken;
    }
    EXPECT_LT(wrong, 400);
}

TEST(Tage, SurvivesAliasingInTinyTables)
{
    // 16-entry tables with 4-bit tags force heavy aliasing across
    // PCs; useful counters must keep defended entries alive enough
    // to stay well below coin-flip on per-PC biased branches.
    TageConfig config;
    config.tableBits = 4;
    config.tagBits = 4;
    config.baseBits = 4;
    TagePredictor tage(config);
    Rng rng(5);
    int wrong = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t pc = 0x2000 + 4 * (i % 113);
        // Bias direction keyed on the PC: learnable despite aliases.
        const bool taken = ((pc >> 2) & 1) != 0
            ? rng.nextBernoulli(0.95)
            : rng.nextBernoulli(0.05);
        wrong += tage.predictAndUpdate(pc, taken) != taken;
    }
    EXPECT_LT(wrong / double(n), 0.25);
}

TEST(TageDeathTest, RejectsZeroHistoryTables)
{
    TageConfig config;
    config.historyTables = 0;
    EXPECT_EXIT(TagePredictor{config}, ::testing::ExitedWithCode(1),
                "at least one history table");
}

TEST(Factory, MakesEveryKnownPredictor)
{
    EXPECT_EQ(makeDirectionPredictor("static-taken")->name(),
              "static-taken");
    EXPECT_EQ(makeDirectionPredictor("bimodal")->name(), "bimodal");
    EXPECT_EQ(makeDirectionPredictor("gshare")->name(), "gshare");
    EXPECT_EQ(makeDirectionPredictor("tournament")->name(), "tournament");
    EXPECT_EQ(makeDirectionPredictor("tage")->name(), "tage");
    EXPECT_EXIT(makeDirectionPredictor("tage9000"),
                ::testing::ExitedWithCode(1), "unknown direction");
}

TEST(Factory, ForwardsTageGeometry)
{
    TageConfig config;
    config.historyTables = 3;
    const auto predictor = makeDirectionPredictor("tage", config);
    const auto *tage = dynamic_cast<TagePredictor *>(predictor.get());
    ASSERT_NE(tage, nullptr);
    EXPECT_EQ(tage->config().historyTables, 3u);
}

TEST(BranchUnit, DirectBranchesNeverMispredict)
{
    BranchUnit unit(makeDirectionPredictor("gshare"));
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(unit.execute(makeBranch(
            0x1000, BranchKind::DirectJump, true, 0x9000)));
        EXPECT_FALSE(unit.execute(makeBranch(
            0x2000, BranchKind::DirectNearCall, true, 0xa000)));
        EXPECT_FALSE(unit.execute(makeBranch(
            0x3000, BranchKind::IndirectNearReturn, true, 0xb000)));
    }
    EXPECT_EQ(unit.totals().mispredicted, 0u);
    EXPECT_EQ(unit.totals().executed, 300u);
}

TEST(BranchUnit, IndirectJumpMispredictsOnTargetChange)
{
    BranchUnit unit(makeDirectionPredictor("gshare"));
    // First sight: BTB cold -> mispredict.
    EXPECT_TRUE(unit.execute(makeBranch(
        0x5000, BranchKind::IndirectJumpNonCallRet, true, 0x9000)));
    // Stable target -> predicted.
    EXPECT_FALSE(unit.execute(makeBranch(
        0x5000, BranchKind::IndirectJumpNonCallRet, true, 0x9000)));
    // Target change -> mispredict once, then learned.
    EXPECT_TRUE(unit.execute(makeBranch(
        0x5000, BranchKind::IndirectJumpNonCallRet, true, 0xc000)));
    EXPECT_FALSE(unit.execute(makeBranch(
        0x5000, BranchKind::IndirectJumpNonCallRet, true, 0xc000)));
}

TEST(BranchUnit, PerKindStatsAreTracked)
{
    BranchUnit unit(makeDirectionPredictor("bimodal"));
    for (int i = 0; i < 50; ++i) {
        unit.execute(makeBranch(0x100, BranchKind::Conditional,
                                true, 0x200));
        unit.execute(makeBranch(0x300, BranchKind::DirectJump,
                                true, 0x400));
    }
    EXPECT_EQ(unit.byKind(BranchKind::Conditional).executed, 50u);
    EXPECT_EQ(unit.byKind(BranchKind::DirectJump).executed, 50u);
    EXPECT_EQ(unit.byKind(BranchKind::DirectJump).mispredicted, 0u);
    EXPECT_EQ(unit.totals().executed, 100u);
}

TEST(BranchUnit, MispredictRateHelper)
{
    BranchStats stats;
    EXPECT_DOUBLE_EQ(stats.mispredictRate(), 0.0);
    stats.executed = 200;
    stats.mispredicted = 5;
    EXPECT_DOUBLE_EQ(stats.mispredictRate(), 0.025);
}

TEST(BranchUnitDeathTest, RejectsNonBranchOps)
{
    BranchUnit unit(makeDirectionPredictor("gshare"));
    EXPECT_DEATH(unit.execute(isa::makeAlu(0x100)), "non-branch");
}

} // namespace
} // namespace sim
} // namespace spec17
