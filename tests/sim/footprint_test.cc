#include "sim/footprint.hh"

#include <gtest/gtest.h>

#include "sim/system_config.hh"

namespace spec17 {
namespace sim {
namespace {

TEST(Footprint, CountsDistinctPages)
{
    FootprintTracker tracker;
    EXPECT_EQ(tracker.pagesTouched(), 0u);
    tracker.touch(0);
    tracker.touch(100);      // same page
    tracker.touch(4095);     // same page
    EXPECT_EQ(tracker.pagesTouched(), 1u);
    tracker.touch(4096);     // next page
    EXPECT_EQ(tracker.pagesTouched(), 2u);
    EXPECT_EQ(tracker.rssBytes(), 2 * 4096u);
}

TEST(Footprint, AlternatingPagesAreBothCounted)
{
    // The last-page fast path must not lose alternating touches.
    FootprintTracker tracker;
    for (int i = 0; i < 10; ++i) {
        tracker.touch(0x10000);
        tracker.touch(0x20000);
    }
    EXPECT_EQ(tracker.pagesTouched(), 2u);
}

TEST(Footprint, ClearResets)
{
    FootprintTracker tracker;
    tracker.touch(0x5000);
    tracker.clear();
    EXPECT_EQ(tracker.pagesTouched(), 0u);
    tracker.touch(0x5000);
    EXPECT_EQ(tracker.pagesTouched(), 1u);
}

TEST(Footprint, LargeSweepMatchesPageMath)
{
    FootprintTracker tracker;
    const std::uint64_t bytes = 1024 * 1024;
    for (std::uint64_t addr = 0; addr < bytes; addr += 64)
        tracker.touch(addr);
    EXPECT_EQ(tracker.rssBytes(), bytes);
}

TEST(SystemConfig, DescribeMentionsTableOneParameters)
{
    const auto config = SystemConfig::haswellXeonE52650Lv3();
    const std::string text = config.describe();
    EXPECT_NE(text.find("32.000 KiB"), std::string::npos);
    EXPECT_NE(text.find("256.000 KiB"), std::string::npos);
    EXPECT_NE(text.find("30.000 MiB"), std::string::npos);
    EXPECT_NE(text.find("8-way"), std::string::npos);
    EXPECT_NE(text.find("1.8 GHz"), std::string::npos);
}

} // namespace
} // namespace sim
} // namespace spec17
