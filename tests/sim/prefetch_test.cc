/**
 * @file
 * Prefetcher unit tests, centred on the confidence-trained stream
 * prefetcher: training/issue hand traces in both directions, the
 * degree/distance windows, late-prefetch detection, and the
 * useful <= issued counter invariants when attached to a hierarchy
 * (in either the L1D or the L2 slot).
 */

#include "sim/prefetch.hh"

#include <gtest/gtest.h>

#include "sim/hierarchy.hh"

namespace spec17 {
namespace sim {
namespace {

StreamConfig
tinyStream()
{
    StreamConfig config;
    config.streams = 4;
    config.degree = 2;
    config.distance = 8;
    config.trainThreshold = 2;
    config.lineBytes = 64;
    return config;
}

std::vector<std::uint64_t>
observeLine(Prefetcher &prefetcher, std::uint64_t line, bool was_miss,
            std::uint64_t pc = 0x4000)
{
    std::vector<std::uint64_t> out;
    prefetcher.observe(pc, line * 64, was_miss, out);
    return out;
}

TEST(StreamPrefetcher, TrainsForwardThenIssuesDegreeLines)
{
    StreamPrefetcher prefetcher(tinyStream());
    // Miss allocates a stream; the first confirmation only trains.
    EXPECT_TRUE(observeLine(prefetcher, 100, true).empty());
    EXPECT_TRUE(observeLine(prefetcher, 101, true).empty());
    EXPECT_EQ(prefetcher.issued(), 0u);

    // Second confirmation reaches trainThreshold: a burst of exactly
    // `degree` lines ahead of the demand frontier.
    const auto burst = observeLine(prefetcher, 102, true);
    ASSERT_EQ(burst.size(), 2u);
    EXPECT_EQ(burst[0], 103u * 64);
    EXPECT_EQ(burst[1], 104u * 64);
    EXPECT_EQ(prefetcher.issued(), 2u);

    // The frontier advances with the demand stream.
    const auto next = observeLine(prefetcher, 103, false);
    ASSERT_EQ(next.size(), 2u);
    EXPECT_EQ(next[0], 105u * 64);
    EXPECT_EQ(next[1], 106u * 64);
}

TEST(StreamPrefetcher, TrainsBackwardStreams)
{
    StreamPrefetcher prefetcher(tinyStream());
    observeLine(prefetcher, 200, true);
    observeLine(prefetcher, 199, true);
    const auto burst = observeLine(prefetcher, 198, true);
    ASSERT_EQ(burst.size(), 2u);
    EXPECT_EQ(burst[0], 197u * 64);
    EXPECT_EQ(burst[1], 196u * 64);
}

TEST(StreamPrefetcher, RunAheadIsCappedByDistance)
{
    StreamConfig config = tinyStream();
    config.degree = 3;
    config.distance = 3;
    StreamPrefetcher prefetcher(config);
    observeLine(prefetcher, 10, true);
    observeLine(prefetcher, 11, true);
    // Training completes with the frontier at 12: a full degree-3
    // burst fills the whole distance-3 window (lines 13..15).
    const auto burst = observeLine(prefetcher, 12, true);
    ASSERT_EQ(burst.size(), 3u);
    EXPECT_EQ(burst.back(), 15u * 64);
    // The next advance may only reclaim the single line the window
    // slid past (16 = 13 + distance), not another full burst.
    const auto slide = observeLine(prefetcher, 13, false);
    ASSERT_EQ(slide.size(), 1u);
    EXPECT_EQ(slide[0], 16u * 64);
}

TEST(StreamPrefetcher, SameLineRepeatsIssueNothing)
{
    StreamPrefetcher prefetcher(tinyStream());
    observeLine(prefetcher, 50, true);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(observeLine(prefetcher, 50, false).empty());
    EXPECT_EQ(prefetcher.issued(), 0u);
}

TEST(StreamPrefetcher, LateCountsMissesOnIssuedLines)
{
    StreamPrefetcher prefetcher(tinyStream());
    observeLine(prefetcher, 100, true);
    observeLine(prefetcher, 101, true);
    observeLine(prefetcher, 102, true); // issues 103 and 104
    EXPECT_EQ(prefetcher.late(), 0u);
    // A demand MISS on an issued line means the fill did not survive
    // until the demand arrived: the model's late prefetch.
    observeLine(prefetcher, 103, true);
    EXPECT_EQ(prefetcher.late(), 1u);
    // A demand hit on an issued line is the useful case, not a late
    // one (useful is credited by the owning hierarchy).
    observeLine(prefetcher, 104, false);
    EXPECT_EQ(prefetcher.late(), 1u);
}

TEST(StreamPrefetcherDeathTest, DegreeBeyondDistanceIsRejected)
{
    StreamConfig config = tinyStream();
    config.degree = 9;
    config.distance = 4;
    EXPECT_DEATH(StreamPrefetcher{config}, "degree beyond");
}

TEST(PrefetcherFactory, MakesEveryKnownKind)
{
    EXPECT_EQ(makePrefetcher("none"), nullptr);
    EXPECT_EQ(makePrefetcher("next-line")->name(), "next-line");
    EXPECT_EQ(makePrefetcher("stride")->name(), "stride");
    EXPECT_EQ(makePrefetcher("stream")->name(), "stream");
    EXPECT_EXIT(makePrefetcher("psychic"),
                ::testing::ExitedWithCode(1), "unknown prefetcher");
}

TEST(PrefetcherFactory, ForwardsStreamKnobs)
{
    StreamConfig config = tinyStream();
    config.degree = 6;
    config.distance = 24;
    const auto prefetcher = makePrefetcher("stream", config);
    const auto *stream =
        dynamic_cast<StreamPrefetcher *>(prefetcher.get());
    ASSERT_NE(stream, nullptr);
    EXPECT_EQ(stream->config().degree, 6u);
    EXPECT_EQ(stream->config().distance, 24u);
}

HierarchyConfig
smallHierarchy()
{
    HierarchyConfig config;
    config.l1d = {"l1d", 1024, 2, 64, ReplacementPolicy::Lru, 4};
    config.l1i = {"l1i", 1024, 2, 64, ReplacementPolicy::Lru, 1};
    config.l2 = {"l2", 4096, 4, 64, ReplacementPolicy::Lru, 12};
    config.l3 = {"l3", 16384, 4, 64, ReplacementPolicy::Lru, 38};
    return config;
}

TEST(StreamInHierarchy, L1SlotCutsSequentialMissesAndCreditsUseful)
{
    HierarchyConfig with = smallHierarchy();
    with.prefetcher = "stream";
    // The 16-line L1D cannot hold the default 16-line run-ahead
    // window on top of the demand stream -- fills would evict
    // not-yet-consumed prefetches (thrash). Size the window to the
    // cache, as a real configuration would.
    with.streamDegree = 2;
    with.streamDistance = 4;
    HierarchyConfig without = smallHierarchy();
    CacheHierarchy prefetching(with);
    CacheHierarchy plain(without);

    std::uint64_t pf_misses = 0, plain_misses = 0;
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
        pf_misses +=
            prefetching.accessData(addr, false, 0x40) != HitLevel::L1;
        plain_misses +=
            plain.accessData(addr, false, 0x40) != HitLevel::L1;
    }
    EXPECT_LT(pf_misses, plain_misses / 2);

    const Prefetcher *stream = prefetching.prefetcher();
    ASSERT_NE(stream, nullptr);
    EXPECT_GT(stream->issued(), 0u);
    // accuracy = useful / issued must be a genuine ratio: the
    // hierarchy credits each prefetched line at most once per fill,
    // and only for demand hits at the L1D.
    EXPECT_GT(prefetching.prefetcherUseful(), 0u);
    EXPECT_LE(prefetching.prefetcherUseful(), stream->issued());
    // coverage's numerator can never exceed the demand hits it is
    // claimed against.
    EXPECT_LE(prefetching.prefetcherUseful(),
              prefetching.l1d().stats().hits);
}

TEST(StreamInHierarchy, L2SlotFillsL2OnlyAndKeepsItsOwnCounters)
{
    HierarchyConfig with = smallHierarchy();
    with.l2Prefetcher = "stream";
    CacheHierarchy hierarchy(with);
    EXPECT_EQ(hierarchy.prefetcher(), nullptr);
    ASSERT_NE(hierarchy.l2Prefetcher(), nullptr);

    std::uint64_t beyond_l2 = 0;
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
        const HitLevel level = hierarchy.accessData(addr, false, 0x40);
        beyond_l2 += level == HitLevel::L3 || level == HitLevel::Memory;
    }
    const Prefetcher *stream = hierarchy.l2Prefetcher();
    EXPECT_GT(stream->issued(), 0u);
    // L2-slot fills never land in the L1D...
    EXPECT_EQ(hierarchy.l1d().stats().prefetchFills, 0u);
    EXPECT_GT(hierarchy.l2().stats().prefetchFills, 0u);
    // ...so its useful credit comes from L2 demand hits alone, and
    // respects the same accuracy bound.
    EXPECT_GT(hierarchy.l2PrefetcherUseful(), 0u);
    EXPECT_LE(hierarchy.l2PrefetcherUseful(), stream->issued());
    // The sweep ran far past the L2 capacity; prefetching must have
    // kept most refills out of the L3/memory path.
    EXPECT_LT(beyond_l2, 64u * 1024 / 64 / 2);
}

} // namespace
} // namespace sim
} // namespace spec17
