#include <gtest/gtest.h>

#include "sim/core_model.hh"
#include "sim/simulator.hh"
#include "trace/kernels.hh"
#include "trace/synthetic.hh"

namespace spec17 {
namespace sim {
namespace {

using isa::makeAlu;
using isa::makeBranch;
using isa::makeLoad;

TEST(CpiStack, PureAluIsAllBase)
{
    CoreModel core(CoreParams{});
    for (int i = 0; i < 10000; ++i)
        core.retire(makeAlu(0x1000 + 4 * i), 0, false, 0, false);
    const CpiStack stack = core.cpiStack();
    EXPECT_NEAR(stack.base, core.cycles(), 2.0);
    EXPECT_DOUBLE_EQ(stack.frontend, 0.0);
    EXPECT_DOUBLE_EQ(stack.branch, 0.0);
    EXPECT_DOUBLE_EQ(stack.memory, 0.0);
    EXPECT_DOUBLE_EQ(stack.compute, 0.0);
}

TEST(CpiStack, DependentMissesShowAsMemory)
{
    CoreModel core(CoreParams{});
    for (int i = 0; i < 2000; ++i) {
        core.retire(makeLoad(0x1000, 0x100000 + i * 64, 8, true), 210,
                    true, 0, false);
    }
    const CpiStack stack = core.cpiStack();
    EXPECT_GT(stack.memory, 0.8 * stack.total());
}

TEST(CpiStack, MispredictsShowAsBranch)
{
    CoreModel core(CoreParams{});
    for (int i = 0; i < 2000; ++i) {
        core.retire(makeBranch(0x1000, isa::BranchKind::Conditional,
                               true, 0x2000),
                    0, false, 0, /*mispredicted=*/true);
    }
    const CpiStack stack = core.cpiStack();
    EXPECT_GT(stack.branch, 0.8 * stack.total());
}

TEST(CpiStack, FetchStallsShowAsFrontend)
{
    CoreModel core(CoreParams{});
    for (int i = 0; i < 1000; ++i)
        core.retire(makeAlu(0x1000), 0, false, 12, false);
    const CpiStack stack = core.cpiStack();
    EXPECT_NEAR(stack.frontend, 12000.0, 1.0);
}

TEST(CpiStack, SerialFpChainsShowAsCompute)
{
    CoreModel core(CoreParams{});
    for (int i = 0; i < 5000; ++i) {
        isa::MicroOp op = makeAlu(0x1000, isa::UopClass::FpAdd);
        op.depOnPrev = true;
        core.retire(op, 0, false, 0, false);
    }
    const CpiStack stack = core.cpiStack();
    EXPECT_GT(stack.compute, 0.6 * stack.total());
}

TEST(CpiStack, ComponentsSumToDispatchCycles)
{
    // A mixed workload: the stack must account for every consumed
    // dispatch cycle (the execution tail past the last dispatch is
    // the only slack).
    trace::SyntheticTraceParams params;
    params.numOps = 100000;
    params.regions = {
        {trace::AccessPattern::Random, 8 << 20, 64, 1.0, 1.0}};
    trace::SyntheticTraceGenerator gen(params);
    CpuSimulator simulator(SystemConfig::haswellXeonE52650Lv3());
    simulator.run(gen);
    const CpiStack stack = simulator.core().cpiStack();
    EXPECT_NEAR(stack.total(), simulator.core().cycles(),
                simulator.core().cycles() * 0.01);
}

TEST(CpiStack, PerInstructionNormalizes)
{
    CpiStack stack;
    stack.base = 100.0;
    stack.memory = 300.0;
    const CpiStack per = stack.perInstruction(200);
    EXPECT_DOUBLE_EQ(per.base, 0.5);
    EXPECT_DOUBLE_EQ(per.memory, 1.5);
    EXPECT_DOUBLE_EQ(per.total(), 2.0);
    // Zero retirement is benign.
    EXPECT_DOUBLE_EQ(stack.perInstruction(0).total(), stack.total());
}

TEST(CpiStack, WorkloadCharacterDeterminesDominantComponent)
{
    auto stack_of = [](trace::TraceSource &source) {
        CpuSimulator simulator(SystemConfig::haswellXeonE52650Lv3());
        simulator.run(source);
        return simulator.core().cpiStack().perInstruction(
            simulator.core().retired());
    };
    trace::PointerChaseKernel chase(64 << 20, 30000);
    const CpiStack chase_stack = stack_of(chase);
    EXPECT_GT(chase_stack.memory, chase_stack.base);
    EXPECT_GT(chase_stack.memory, chase_stack.branch);

    trace::StreamKernel resident(16 * 1024, 50000);
    const CpiStack resident_stack = stack_of(resident);
    EXPECT_GT(resident_stack.base, resident_stack.memory);
}

} // namespace
} // namespace sim
} // namespace spec17
