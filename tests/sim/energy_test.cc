#include "sim/energy.hh"

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "trace/kernels.hh"

namespace spec17 {
namespace sim {
namespace {

using counters::CounterSet;
using counters::PerfEvent;

TEST(Energy, HandComputedBreakdown)
{
    CounterSet c;
    c.set(PerfEvent::UopsRetiredAll, 1000);
    c.set(PerfEvent::MemUopsRetiredAllLoads, 200);
    c.set(PerfEvent::MemUopsRetiredAllStores, 100);
    c.set(PerfEvent::MemLoadUopsRetiredL1Miss, 50);
    c.set(PerfEvent::MemLoadUopsRetiredL2Miss, 20);
    c.set(PerfEvent::MemLoadUopsRetiredL3Miss, 5);
    c.set(PerfEvent::BrMispExecAllBranches, 10);

    EnergyParams params;
    params.uopPj = 10;
    params.l1AccessPj = 2;
    params.l2AccessPj = 20;
    params.l3AccessPj = 100;
    params.dramLinePj = 1000;
    params.mispredictPj = 50;
    params.leakageWatts = 1.0;
    params.frequencyGHz = 1.0;

    const EnergyBreakdown e = computeEnergy(c, 2000.0, params);
    EXPECT_NEAR(e.coreDynamicJ, 1000 * 10e-12, 1e-15);
    EXPECT_NEAR(e.l1J, 1300 * 2e-12, 1e-15);
    EXPECT_NEAR(e.l2J, 50 * 20e-12, 1e-15);
    EXPECT_NEAR(e.l3J, 20 * 100e-12, 1e-15);
    EXPECT_NEAR(e.dramJ, 5 * 1000e-12, 1e-15);
    EXPECT_NEAR(e.mispredictJ, 10 * 50e-12, 1e-15);
    // 2000 cycles at 1 GHz = 2 us of 1 W leakage.
    EXPECT_NEAR(e.staticJ, 2e-6, 1e-12);
    EXPECT_NEAR(e.totalJ(),
                e.coreDynamicJ + e.l1J + e.l2J + e.l3J + e.dramJ
                    + e.mispredictJ + e.staticJ,
                1e-18);
}

TEST(Energy, DerivedMetrics)
{
    EnergyBreakdown e;
    e.coreDynamicJ = 2.0;
    e.staticJ = 1.0;
    EXPECT_DOUBLE_EQ(e.totalJ(), 3.0);
    EXPECT_DOUBLE_EQ(e.watts(1.5), 2.0);
    EXPECT_DOUBLE_EQ(e.epiNj(3e9), 1.0);
    EXPECT_DOUBLE_EQ(e.edp(2.0), 6.0);
    EXPECT_DOUBLE_EQ(e.watts(0.0), 0.0);
    EXPECT_DOUBLE_EQ(e.epiNj(0.0), 0.0);
}

TEST(Energy, ZeroCountersGiveOnlyStaticEnergy)
{
    const EnergyBreakdown e = computeEnergy(CounterSet(), 1.8e9);
    EXPECT_DOUBLE_EQ(e.coreDynamicJ, 0.0);
    EXPECT_DOUBLE_EQ(e.dramJ, 0.0);
    // One second at the default 3 W leakage.
    EXPECT_NEAR(e.staticJ, 3.0, 1e-9);
}

TEST(Energy, MemoryBoundCostsMoreEnergyPerInstruction)
{
    const SystemConfig config = SystemConfig::haswellXeonE52650Lv3();
    trace::StreamKernel cheap(16 * 1024, 100000);
    CpuSimulator sim_cheap(config);
    const SimResult cheap_result = sim_cheap.run(cheap);

    trace::PointerChaseKernel expensive(64 * 1024 * 1024, 50000);
    CpuSimulator sim_expensive(config);
    const SimResult expensive_result = sim_expensive.run(expensive);

    const auto cheap_e =
        computeEnergy(cheap_result.counters, cheap_result.cycles);
    const auto exp_e = computeEnergy(expensive_result.counters,
                                     expensive_result.cycles);
    const double cheap_epi = cheap_e.epiNj(double(
        cheap_result.counters.get(PerfEvent::InstRetiredAny)));
    const double exp_epi = exp_e.epiNj(double(
        expensive_result.counters.get(PerfEvent::InstRetiredAny)));
    // DRAM traffic plus stall leakage dominate: at least 5x the EPI.
    EXPECT_GT(exp_epi, 5.0 * cheap_epi);
    // And the DRAM component itself is material for the chaser.
    EXPECT_GT(exp_e.dramJ, exp_e.coreDynamicJ);
}

TEST(EnergyDeathTest, RejectsNegativeCoefficients)
{
    EnergyParams params;
    params.l3AccessPj = -1.0;
    EXPECT_DEATH(computeEnergy(counters::CounterSet(), 0.0, params),
                 "non-negative");
}

} // namespace
} // namespace sim
} // namespace spec17
