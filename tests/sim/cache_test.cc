#include "sim/cache.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace sim {
namespace {

CacheConfig
tinyCache(ReplacementPolicy policy = ReplacementPolicy::Lru)
{
    // 4 sets x 2 ways x 64 B = 512 B.
    CacheConfig config;
    config.name = "tiny";
    config.sizeBytes = 512;
    config.assoc = 2;
    config.lineBytes = 64;
    config.policy = policy;
    return config;
}

TEST(CacheConfig, GeometryValidation)
{
    EXPECT_EQ(tinyCache().numSets(), 4u);
    CacheConfig l1;
    l1.sizeBytes = 32 * 1024;
    l1.assoc = 8;
    EXPECT_EQ(l1.numSets(), 64u);

    CacheConfig bad = tinyCache();
    bad.lineBytes = 48;
    EXPECT_DEATH(bad.numSets(), "power of two");
    bad = tinyCache();
    bad.sizeBytes = 500;
    EXPECT_DEATH(bad.numSets(), "not divisible");
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1038, false)); // same 64B line
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache cache(tinyCache());
    // Three lines mapping to set 0 (stride = numSets * line = 256).
    cache.access(0 * 256, false);  // A
    cache.access(1 * 256, false);  // B
    cache.access(0 * 256, false);  // touch A -> B is LRU
    cache.access(2 * 256, false);  // C evicts B
    EXPECT_TRUE(cache.probe(0 * 256));
    EXPECT_FALSE(cache.probe(1 * 256));
    EXPECT_TRUE(cache.probe(2 * 256));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, WritebackOnlyForDirtyVictims)
{
    SetAssocCache cache(tinyCache());
    cache.access(0 * 256, true);   // dirty A
    cache.access(1 * 256, false);  // clean B
    cache.access(2 * 256, false);  // evicts A (LRU) -> writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
    cache.access(3 * 256, false);  // evicts B (clean) -> no writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(Cache, ProbeDoesNotPerturbState)
{
    SetAssocCache cache(tinyCache());
    cache.access(0 * 256, false); // A
    cache.access(1 * 256, false); // B; A is LRU
    // Probing A must NOT refresh it.
    EXPECT_TRUE(cache.probe(0 * 256));
    cache.access(2 * 256, false); // evicts A
    EXPECT_FALSE(cache.probe(0 * 256));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(Cache, FillInstallsWithoutDemandStats)
{
    SetAssocCache cache(tinyCache());
    cache.fill(0x2000);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
    EXPECT_TRUE(cache.access(0x2000, false));
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    SetAssocCache cache(tinyCache());
    cache.access(0x1000, false);
    cache.access(0x2000, false);
    cache.flushAll();
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_FALSE(cache.probe(0x2000));
}

TEST(Cache, WorkingSetSmallerThanCacheEventuallyAllHits)
{
    CacheConfig config;
    config.sizeBytes = 32 * 1024;
    config.assoc = 8;
    SetAssocCache cache(config);
    // 16 KiB working set, swept twice.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64)
            cache.access(addr, false);
    // Second pass must be all hits.
    EXPECT_EQ(cache.stats().misses, 16u * 1024 / 64);
    EXPECT_EQ(cache.stats().hits, 16u * 1024 / 64);
}

TEST(Cache, WorkingSetLargerThanCacheThrashesWithLru)
{
    CacheConfig config = tinyCache();
    SetAssocCache cache(config);
    // 2x the cache size swept repeatedly: LRU + round-robin sweep is
    // the pathological case -> ~100% misses after warmup.
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t addr = 0; addr < 1024; addr += 64)
            cache.access(addr, false);
    EXPECT_GT(cache.stats().missRate(), 0.95);
}

TEST(Cache, TreePlruBehavesSanely)
{
    SetAssocCache cache(tinyCache(ReplacementPolicy::TreePlru));
    cache.access(0 * 256, false);
    cache.access(1 * 256, false);
    EXPECT_TRUE(cache.access(0 * 256, false));
    EXPECT_TRUE(cache.access(1 * 256, false));
    // A third line evicts exactly one of the two residents.
    cache.access(2 * 256, false);
    const int resident = cache.probe(0 * 256) + cache.probe(1 * 256);
    EXPECT_EQ(resident, 1);
    EXPECT_TRUE(cache.probe(2 * 256));
}

TEST(Cache, TreePlruVictimFollowsProtection)
{
    // 1-set, 4-way PLRU: after touching ways for A,B,C,D then
    // re-touching A, the next victim must not be A.
    CacheConfig config;
    config.name = "plru4";
    config.sizeBytes = 4 * 64;
    config.assoc = 4;
    config.policy = ReplacementPolicy::TreePlru;
    SetAssocCache cache(config);
    cache.access(0x000, false);
    cache.access(0x100, false);
    cache.access(0x200, false);
    cache.access(0x300, false);
    cache.access(0x000, false); // protect A
    cache.access(0x400, false); // eviction
    EXPECT_TRUE(cache.probe(0x000));
}

TEST(Cache, RandomPolicyIsDeterministicPerSeed)
{
    SetAssocCache a(tinyCache(ReplacementPolicy::Random), 5);
    SetAssocCache b(tinyCache(ReplacementPolicy::Random), 5);
    for (std::uint64_t i = 0; i < 64; ++i) {
        const std::uint64_t addr = (i * 7919) % 4096 / 64 * 64;
        ASSERT_EQ(a.access(addr, false), b.access(addr, false));
    }
    EXPECT_EQ(a.stats().hits, b.stats().hits);
}

TEST(Cache, StatsMissRate)
{
    CacheStats stats;
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.0);
    stats.hits = 3;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.25);
}

TEST(Cache, PolicyNames)
{
    EXPECT_EQ(replacementPolicyName(ReplacementPolicy::Lru), "lru");
    EXPECT_EQ(replacementPolicyName(ReplacementPolicy::TreePlru),
              "tree-plru");
    EXPECT_EQ(replacementPolicyName(ReplacementPolicy::Random), "random");
}

} // namespace
} // namespace sim
} // namespace spec17
