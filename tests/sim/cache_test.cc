#include "sim/cache.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace sim {
namespace {

CacheConfig
tinyCache(ReplacementPolicy policy = ReplacementPolicy::Lru)
{
    // 4 sets x 2 ways x 64 B = 512 B.
    CacheConfig config;
    config.name = "tiny";
    config.sizeBytes = 512;
    config.assoc = 2;
    config.lineBytes = 64;
    config.policy = policy;
    return config;
}

TEST(CacheConfig, GeometryValidation)
{
    EXPECT_EQ(tinyCache().numSets(), 4u);
    CacheConfig l1;
    l1.sizeBytes = 32 * 1024;
    l1.assoc = 8;
    EXPECT_EQ(l1.numSets(), 64u);

    CacheConfig bad = tinyCache();
    bad.lineBytes = 48;
    EXPECT_DEATH(bad.numSets(), "power of two");
    bad = tinyCache();
    bad.sizeBytes = 500;
    EXPECT_DEATH(bad.numSets(), "not divisible");
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache cache(tinyCache());
    EXPECT_FALSE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1000, false));
    EXPECT_TRUE(cache.access(0x1038, false)); // same 64B line
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    SetAssocCache cache(tinyCache());
    // Three lines mapping to set 0 (stride = numSets * line = 256).
    cache.access(0 * 256, false);  // A
    cache.access(1 * 256, false);  // B
    cache.access(0 * 256, false);  // touch A -> B is LRU
    cache.access(2 * 256, false);  // C evicts B
    EXPECT_TRUE(cache.probe(0 * 256));
    EXPECT_FALSE(cache.probe(1 * 256));
    EXPECT_TRUE(cache.probe(2 * 256));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, WritebackOnlyForDirtyVictims)
{
    SetAssocCache cache(tinyCache());
    cache.access(0 * 256, true);   // dirty A
    cache.access(1 * 256, false);  // clean B
    cache.access(2 * 256, false);  // evicts A (LRU) -> writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
    cache.access(3 * 256, false);  // evicts B (clean) -> no writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(Cache, ProbeDoesNotPerturbState)
{
    SetAssocCache cache(tinyCache());
    cache.access(0 * 256, false); // A
    cache.access(1 * 256, false); // B; A is LRU
    // Probing A must NOT refresh it.
    EXPECT_TRUE(cache.probe(0 * 256));
    cache.access(2 * 256, false); // evicts A
    EXPECT_FALSE(cache.probe(0 * 256));
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(Cache, FillInstallsWithoutDemandStats)
{
    SetAssocCache cache(tinyCache());
    cache.fill(0x2000);
    EXPECT_EQ(cache.stats().misses, 0u);
    EXPECT_EQ(cache.stats().prefetchFills, 1u);
    EXPECT_TRUE(cache.access(0x2000, false));
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, FlushInvalidatesEverything)
{
    SetAssocCache cache(tinyCache());
    cache.access(0x1000, false);
    cache.access(0x2000, false);
    cache.flushAll();
    EXPECT_FALSE(cache.probe(0x1000));
    EXPECT_FALSE(cache.probe(0x2000));
}

TEST(Cache, WorkingSetSmallerThanCacheEventuallyAllHits)
{
    CacheConfig config;
    config.sizeBytes = 32 * 1024;
    config.assoc = 8;
    SetAssocCache cache(config);
    // 16 KiB working set, swept twice.
    for (int pass = 0; pass < 2; ++pass)
        for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64)
            cache.access(addr, false);
    // Second pass must be all hits.
    EXPECT_EQ(cache.stats().misses, 16u * 1024 / 64);
    EXPECT_EQ(cache.stats().hits, 16u * 1024 / 64);
}

TEST(Cache, WorkingSetLargerThanCacheThrashesWithLru)
{
    CacheConfig config = tinyCache();
    SetAssocCache cache(config);
    // 2x the cache size swept repeatedly: LRU + round-robin sweep is
    // the pathological case -> ~100% misses after warmup.
    for (int pass = 0; pass < 4; ++pass)
        for (std::uint64_t addr = 0; addr < 1024; addr += 64)
            cache.access(addr, false);
    EXPECT_GT(cache.stats().missRate(), 0.95);
}

TEST(Cache, TreePlruBehavesSanely)
{
    SetAssocCache cache(tinyCache(ReplacementPolicy::TreePlru));
    cache.access(0 * 256, false);
    cache.access(1 * 256, false);
    EXPECT_TRUE(cache.access(0 * 256, false));
    EXPECT_TRUE(cache.access(1 * 256, false));
    // A third line evicts exactly one of the two residents.
    cache.access(2 * 256, false);
    const int resident = cache.probe(0 * 256) + cache.probe(1 * 256);
    EXPECT_EQ(resident, 1);
    EXPECT_TRUE(cache.probe(2 * 256));
}

TEST(Cache, TreePlruVictimFollowsProtection)
{
    // 1-set, 4-way PLRU: after touching ways for A,B,C,D then
    // re-touching A, the next victim must not be A.
    CacheConfig config;
    config.name = "plru4";
    config.sizeBytes = 4 * 64;
    config.assoc = 4;
    config.policy = ReplacementPolicy::TreePlru;
    SetAssocCache cache(config);
    cache.access(0x000, false);
    cache.access(0x100, false);
    cache.access(0x200, false);
    cache.access(0x300, false);
    cache.access(0x000, false); // protect A
    cache.access(0x400, false); // eviction
    EXPECT_TRUE(cache.probe(0x000));
}

TEST(Cache, RandomPolicyIsDeterministicPerSeed)
{
    SetAssocCache a(tinyCache(ReplacementPolicy::Random), 5);
    SetAssocCache b(tinyCache(ReplacementPolicy::Random), 5);
    for (std::uint64_t i = 0; i < 64; ++i) {
        const std::uint64_t addr = (i * 7919) % 4096 / 64 * 64;
        ASSERT_EQ(a.access(addr, false), b.access(addr, false));
    }
    EXPECT_EQ(a.stats().hits, b.stats().hits);
}

TEST(Cache, StatsMissRate)
{
    CacheStats stats;
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.0);
    stats.hits = 3;
    stats.misses = 1;
    EXPECT_DOUBLE_EQ(stats.missRate(), 0.25);
}

TEST(Cache, PolicyNames)
{
    EXPECT_EQ(replacementPolicyName(ReplacementPolicy::Lru), "lru");
    EXPECT_EQ(replacementPolicyName(ReplacementPolicy::TreePlru),
              "tree-plru");
    EXPECT_EQ(replacementPolicyName(ReplacementPolicy::Random), "random");
}

CacheConfig
wayPredictedCache(WayPredictor predictor)
{
    CacheConfig config = tinyCache();
    config.wayPredictor = predictor;
    config.wayMispredictPenalty = 2;
    return config;
}

TEST(WayPrediction, MruHandTracedMispredictAccounting)
{
    SetAssocCache cache(wayPredictedCache(WayPredictor::Mru));
    // Set-0 lines A and B (stride = numSets * line = 256). Each
    // miss-allocation touches the filled way, making it MRU.
    cache.access(0 * 256, false); // A -> way 0, MRU = 0
    cache.access(1 * 256, false); // B -> way 1, MRU = 1
    EXPECT_EQ(cache.stats().wayPredictions, 0u); // misses predict nothing
    EXPECT_EQ(cache.lastWayPenalty(), 0u);

    // Load hit on A (way 0) while MRU points at way 1: mispredict,
    // and the 2-cycle penalty lands in both lastWayPenalty() and the
    // cumulative counter.
    EXPECT_TRUE(cache.access(0 * 256, false));
    EXPECT_EQ(cache.stats().wayPredictions, 1u);
    EXPECT_EQ(cache.stats().wayMispredicts, 1u);
    EXPECT_EQ(cache.stats().wayPenaltyCycles, 2u);
    EXPECT_EQ(cache.lastWayPenalty(), 2u);

    // A is now MRU: the repeat predicts correctly, penalty-free.
    EXPECT_TRUE(cache.access(0 * 256, false));
    EXPECT_EQ(cache.stats().wayPredictions, 2u);
    EXPECT_EQ(cache.stats().wayMispredicts, 1u);
    EXPECT_EQ(cache.stats().wayPenaltyCycles, 2u);
    EXPECT_EQ(cache.lastWayPenalty(), 0u);
}

TEST(WayPrediction, StoresNeitherPredictNorPay)
{
    SetAssocCache cache(wayPredictedCache(WayPredictor::Mru));
    cache.access(0 * 256, false); // A -> way 0, MRU = 0
    cache.access(1 * 256, false); // B -> way 1, MRU = 1
    // Store hit on the non-MRU way: drains through the write buffer,
    // so no prediction is consulted and no penalty is charged.
    EXPECT_TRUE(cache.access(0 * 256, true));
    EXPECT_EQ(cache.stats().wayPredictions, 0u);
    EXPECT_EQ(cache.stats().wayMispredicts, 0u);
    EXPECT_EQ(cache.lastWayPenalty(), 0u);
}

TEST(WayPrediction, UtagAliasStealsThePrediction)
{
    // Tags 0x0 and 0x101 share partial tag utagOf == 0 (0x101 ^
    // 0x001 == 0x100, whose low byte is 0), so the earlier way's
    // alias steals the first-match prediction from the later way.
    ASSERT_EQ(SetAssocCache::utagOf(0x0), SetAssocCache::utagOf(0x101));
    SetAssocCache cache(wayPredictedCache(WayPredictor::Utag));
    const std::uint64_t addr_a = 0x0;         // tag 0x0, set 0
    const std::uint64_t addr_b = 0x101 << 8;  // tag 0x101, set 0
    cache.access(addr_a, false); // way 0
    cache.access(addr_b, false); // way 1

    // Hit on B at way 1: the scan finds way 0's aliasing utag first.
    EXPECT_TRUE(cache.access(addr_b, false));
    EXPECT_EQ(cache.stats().wayPredictions, 1u);
    EXPECT_EQ(cache.stats().wayMispredicts, 1u);
    EXPECT_EQ(cache.lastWayPenalty(), 2u);

    // Hit on A at way 0: first match IS way 0 -- correct.
    EXPECT_TRUE(cache.access(addr_a, false));
    EXPECT_EQ(cache.stats().wayPredictions, 2u);
    EXPECT_EQ(cache.stats().wayMispredicts, 1u);
    EXPECT_EQ(cache.lastWayPenalty(), 0u);
}

TEST(WayPrediction, Names)
{
    EXPECT_EQ(wayPredictorName(WayPredictor::None), "none");
    EXPECT_EQ(wayPredictorName(WayPredictor::Mru), "mru");
    EXPECT_EQ(wayPredictorName(WayPredictor::Utag), "utag");
    EXPECT_EQ(wayPredictorFromName("mru"), WayPredictor::Mru);
    EXPECT_EQ(wayPredictorFromName("utag"), WayPredictor::Utag);
    EXPECT_EQ(wayPredictorFromName("none"), WayPredictor::None);
}

TEST(WayPredictionDeathTest, DirectMappedCacheIsContradictory)
{
    CacheConfig config = wayPredictedCache(WayPredictor::Mru);
    config.assoc = 1;
    config.sizeBytes = 256;
    EXPECT_EXIT(SetAssocCache{config}, ::testing::ExitedWithCode(1),
                "contradictory with assoc == 1");
}

} // namespace
} // namespace sim
} // namespace spec17
