#include "sim/core_model.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace sim {
namespace {

using isa::makeAlu;
using isa::makeBranch;
using isa::makeLoad;
using isa::makeStore;

CoreParams
defaults()
{
    return CoreParams{};
}

/** Retires @p n independent single-cycle ALU ops. */
double
runIndependentAlus(CoreModel &core, int n)
{
    for (int i = 0; i < n; ++i)
        core.retire(makeAlu(0x1000 + 4 * i), 0, false, 0, false);
    return core.cycles();
}

TEST(CoreModel, IndependentAluIpcApproachesWidth)
{
    CoreModel core(defaults());
    const double cycles = runIndependentAlus(core, 100000);
    const double ipc = 100000 / cycles;
    EXPECT_NEAR(ipc, defaults().dispatchWidth, 0.1);
}

TEST(CoreModel, SerialDependencyChainLimitsIpcToOne)
{
    CoreModel core(defaults());
    for (int i = 0; i < 50000; ++i) {
        isa::MicroOp op = makeAlu(0x1000);
        op.depOnPrev = true;
        core.retire(op, 0, false, 0, false);
    }
    const double ipc = 50000 / core.cycles();
    EXPECT_NEAR(ipc, 1.0, 0.05);
}

TEST(CoreModel, FpChainLimitedByFpLatency)
{
    CoreModel core(defaults());
    for (int i = 0; i < 50000; ++i) {
        isa::MicroOp op = makeAlu(0x1000, isa::UopClass::FpAdd);
        op.depOnPrev = true;
        core.retire(op, 0, false, 0, false);
    }
    const double ipc = 50000 / core.cycles();
    EXPECT_NEAR(ipc, 1.0 / defaults().fpAddLatency, 0.02);
}

TEST(CoreModel, DependentMissChainIsLatencyBound)
{
    CoreModel core(defaults());
    const unsigned mem_latency = 210;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        // Pointer chase: every load depends on the previous one.
        core.retire(makeLoad(0x1000, 0x100000 + i * 64, 8, true),
                    mem_latency, true, 0, false);
    }
    const double cpi = core.cycles() / n;
    EXPECT_NEAR(cpi, mem_latency, mem_latency * 0.05);
}

TEST(CoreModel, IndependentMissesOverlapUpToMshrs)
{
    CoreModel core(defaults());
    const unsigned mem_latency = 210;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        // Independent misses: MLP should hide most latency.
        core.retire(makeLoad(0x1000, 0x100000 + i * 64, 8, false),
                    mem_latency, true, 0, false);
    }
    const double cpi = core.cycles() / n;
    // With 10 MSHRs the effective latency per miss is bounded by
    // roughly mem_latency / numMshrs (plus dispatch).
    EXPECT_LT(cpi, mem_latency / 5.0);
    // But MSHRs are finite: it cannot beat latency/MSHRs.
    EXPECT_GT(cpi, mem_latency / (defaults().numMshrs + 1.0));
}

TEST(CoreModel, RobLimitsRunaheadPastBlockingMiss)
{
    // One very long dependent miss followed by many ALUs: dispatch
    // can run ahead only ROB entries deep, so total time is dominated
    // by the miss latency, not hidden by it.
    CoreModel core(defaults());
    core.retire(makeLoad(0x1000, 0x100000, 8, true), 10000, true, 0,
                false);
    for (int i = 0; i < 150; ++i) // fewer than ROB entries
        core.retire(makeAlu(0x2000 + 4 * i), 0, false, 0, false);
    EXPECT_GE(core.cycles(), 10000.0);
    const double c_before = core.cycles();

    // Beyond the ROB window, dispatch stalls against the load's
    // completion; the next op cannot have dispatched earlier.
    CoreModel core2(defaults());
    core2.retire(makeLoad(0x1000, 0x100000, 8, true), 10000, true, 0,
                 false);
    for (int i = 0; i < 500; ++i)
        core2.retire(makeAlu(0x2000 + 4 * i), 0, false, 0, false);
    EXPECT_GT(core2.cycles(), c_before);
}

TEST(CoreModel, MispredictsAddResolvePlusRefill)
{
    const CoreParams params = defaults();
    CoreModel base(params);
    CoreModel mispredicting(params);
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        base.retire(makeBranch(0x1000, isa::BranchKind::Conditional,
                               true, 0x2000),
                    0, false, 0, false);
        mispredicting.retire(
            makeBranch(0x1000, isa::BranchKind::Conditional, true,
                       0x2000),
            0, false, 0, true);
    }
    const double per_branch =
        (mispredicting.cycles() - base.cycles()) / n;
    // Every branch mispredicts: cost ~= resolve + refill per branch.
    EXPECT_NEAR(per_branch,
                params.branchResolveLatency + params.mispredictPenalty,
                3.0);
}

TEST(CoreModel, LoadDependentBranchResolvesLate)
{
    const CoreParams params = defaults();
    // Mispredicted branch fed by a 210-cycle load costs far more
    // than one fed by a register.
    CoreModel fast(params);
    fast.retire(makeLoad(0x1000, 0x100000, 8, false), 4, false, 0,
                false);
    fast.retire(makeBranch(0x1004, isa::BranchKind::Conditional, true,
                           0x2000),
                0, false, 0, true);
    CoreModel slow(params);
    slow.retire(makeLoad(0x1000, 0x100000, 8, false), 210, true, 0,
                false);
    isa::MicroOp branch = makeBranch(
        0x1004, isa::BranchKind::Conditional, true, 0x2000, true);
    slow.retire(branch, 0, false, 0, true);
    EXPECT_GT(slow.cycles(), fast.cycles() + 150.0);
}

TEST(CoreModel, StoresDoNotStall)
{
    CoreModel core(defaults());
    for (int i = 0; i < 10000; ++i)
        core.retire(makeStore(0x1000, 0x100000 + i * 64), 0, false, 0,
                    false);
    const double ipc = 10000 / core.cycles();
    EXPECT_NEAR(ipc, defaults().dispatchWidth, 0.1);
}

TEST(CoreModel, FetchStallsAddFrontendCycles)
{
    CoreModel stalled(defaults());
    CoreModel smooth(defaults());
    for (int i = 0; i < 1000; ++i) {
        stalled.retire(makeAlu(0x1000), 0, false, 12, false);
        smooth.retire(makeAlu(0x1000), 0, false, 0, false);
    }
    EXPECT_NEAR(stalled.cycles() - smooth.cycles(), 12000.0, 100.0);
}

TEST(CoreModel, SecondsUsesConfiguredClock)
{
    CoreParams params = defaults();
    params.frequencyGHz = 2.0;
    CoreModel core(params);
    EXPECT_DOUBLE_EQ(core.secondsFor(2e9), 1.0);
}

TEST(CoreModel, RetiredCountTracksOps)
{
    CoreModel core(defaults());
    runIndependentAlus(core, 123);
    EXPECT_EQ(core.retired(), 123u);
}

TEST(CoreModelDeathTest, RejectsDegenerateParams)
{
    CoreParams params = defaults();
    params.dispatchWidth = 0;
    EXPECT_DEATH(CoreModel{params}, "width");
    params = defaults();
    params.numMshrs = 0;
    EXPECT_DEATH(CoreModel{params}, "MSHR");
}

} // namespace
} // namespace sim
} // namespace spec17
