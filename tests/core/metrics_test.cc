#include "core/metrics.hh"

#include <gtest/gtest.h>

#include "core/compare.hh"

namespace spec17 {
namespace core {
namespace {

using counters::PerfEvent;
using workloads::InputSize;
using workloads::SuiteKind;

/** Builds a synthetic PairResult with hand-set counters. */
suite::PairResult
madeUpResult()
{
    static const workloads::WorkloadProfile &profile =
        workloads::findProfile(workloads::cpu2017Suite(), "505.mcf_r");
    suite::PairResult r;
    r.name = "505.mcf_r";
    r.profile = &profile;
    r.size = InputSize::Ref;
    r.instrBillions = 1000.0;
    r.seconds = 600.0;
    auto &c = r.counters;
    c.set(PerfEvent::InstRetiredAny, 1000000);
    c.set(PerfEvent::UopsRetiredAll, 1000000);
    c.set(PerfEvent::CpuClkUnhaltedRefTsc, 1250000);
    c.set(PerfEvent::MemUopsRetiredAllLoads, 270000);
    c.set(PerfEvent::MemUopsRetiredAllStores, 90000);
    c.set(PerfEvent::BrInstExecAllBranches, 312770);
    c.set(PerfEvent::BrInstExecAllConditional, 250000);
    c.set(PerfEvent::BrMispExecAllBranches, 17202);
    c.set(PerfEvent::MemLoadUopsRetiredL1Hit, 245700);
    c.set(PerfEvent::MemLoadUopsRetiredL1Miss, 24300);
    c.set(PerfEvent::MemLoadUopsRetiredL2Hit, 8330);
    c.set(PerfEvent::MemLoadUopsRetiredL2Miss, 15970);
    c.set(PerfEvent::MemLoadUopsRetiredL3Hit, 11180);
    c.set(PerfEvent::MemLoadUopsRetiredL3Miss, 4790);
    c.set(PerfEvent::RssBytes, 550ull << 20);
    c.set(PerfEvent::VszBytes, 620ull << 20);
    return r;
}

TEST(Metrics, DerivesThePaperDefinitions)
{
    const Metrics m = deriveMetrics(madeUpResult());
    EXPECT_NEAR(m.ipc, 0.8, 1e-9);
    EXPECT_NEAR(m.loadPct, 27.0, 1e-9);
    EXPECT_NEAR(m.storePct, 9.0, 1e-9);
    EXPECT_NEAR(m.branchPct, 31.277, 1e-9);
    EXPECT_NEAR(m.condBranchPct, 100.0 * 250000 / 312770, 1e-9);
    EXPECT_NEAR(m.l1MissPct, 9.0, 1e-9);
    EXPECT_NEAR(m.l2MissPct, 100.0 * 15970 / 24300, 1e-9);
    EXPECT_NEAR(m.l3MissPct, 100.0 * 4790 / 15970, 1e-9);
    EXPECT_NEAR(m.mispredictPct, 100.0 * 17202 / 312770, 1e-9);
    EXPECT_NEAR(m.rssGiB, 550.0 / 1024, 1e-9);
    EXPECT_NEAR(m.vszGiB, 620.0 / 1024, 1e-9);
    EXPECT_DOUBLE_EQ(m.instrBillions, 1000.0);
    EXPECT_DOUBLE_EQ(m.seconds, 600.0);
}

TEST(Metrics, ZeroDenominatorsYieldZeroNotNan)
{
    suite::PairResult r = madeUpResult();
    r.counters = counters::CounterSet();
    r.counters.set(PerfEvent::InstRetiredAny, 100);
    r.counters.set(PerfEvent::UopsRetiredAll, 100);
    const Metrics m = deriveMetrics(r);
    EXPECT_DOUBLE_EQ(m.ipc, 0.0);
    EXPECT_DOUBLE_EQ(m.l1MissPct, 0.0);
    EXPECT_DOUBLE_EQ(m.mispredictPct, 0.0);
}

TEST(Metrics, FiltersAndGroupings)
{
    std::vector<Metrics> ms(4);
    ms[0].suite = SuiteKind::RateInt;
    ms[1].suite = SuiteKind::RateFp;
    ms[2].suite = SuiteKind::SpeedInt;
    ms[2].errored = true;
    ms[3].suite = SuiteKind::SpeedFp;
    EXPECT_EQ(withoutErrored(ms).size(), 3u);
    EXPECT_EQ(bySuite(ms, SuiteKind::RateInt).size(), 1u);
    EXPECT_EQ(intSubset(ms).size(), 2u);
    EXPECT_EQ(fpSubset(ms).size(), 2u);
}

TEST(Aggregate, MeanAndStdDevOverPairs)
{
    std::vector<Metrics> ms(3);
    ms[0].ipc = 1.0;
    ms[1].ipc = 2.0;
    ms[2].ipc = 3.0;
    ms[0].seconds = 10;
    ms[1].seconds = 20;
    ms[2].seconds = 30;
    const SuiteAggregates agg = aggregate(ms);
    EXPECT_EQ(agg.count, 3u);
    EXPECT_DOUBLE_EQ(agg.ipc.mean, 2.0);
    EXPECT_DOUBLE_EQ(agg.ipc.stddev, 1.0);
    EXPECT_DOUBLE_EQ(agg.totalSeconds, 60.0);
    EXPECT_DOUBLE_EQ(agg.meanSeconds, 20.0);
}

TEST(Aggregate, CorrelationWithIpcIsSigned)
{
    std::vector<Metrics> ms(5);
    for (int i = 0; i < 5; ++i) {
        ms[i].ipc = 1.0 + i;
        ms[i].rssGiB = 10.0 - i;     // anti-correlated
        ms[i].l1MissPct = 2.0 + i;   // correlated
    }
    EXPECT_LT(correlationWithIpc(ms, &Metrics::rssGiB), -0.99);
    EXPECT_GT(correlationWithIpc(ms, &Metrics::l1MissPct), 0.99);
}

TEST(AggregateDeathTest, EmptySetPanics)
{
    EXPECT_DEATH(aggregate({}), "empty");
}

} // namespace
} // namespace core
} // namespace spec17
