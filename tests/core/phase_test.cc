#include "core/phase.hh"

#include <gtest/gtest.h>

#include <set>

#include "trace/phased.hh"
#include "trace/synthetic.hh"

namespace spec17 {
namespace core {
namespace {

/** A compute-bound synthetic segment. */
std::shared_ptr<trace::TraceSource>
computePhase(std::uint64_t ops, std::uint64_t seed)
{
    trace::SyntheticTraceParams params;
    params.numOps = ops;
    params.seed = seed;
    params.loadFrac = 0.10;
    params.storeFrac = 0.05;
    params.branchFrac = 0.10;
    // Fully predictable branches: phase signatures must reflect the
    // planted structure, not predictor warmup drift.
    params.hardBranchFrac = 0.0;
    params.easyTakenBias = 0.9995;
    params.indirectSwitchProb = 0.0;
    params.numBranchSites = 64;            // warms within one interval
    params.codeFootprintBytes = 16 * 1024; // no cold-code warmup
    params.regions = {
        {trace::AccessPattern::Random, 16 * 1024, 64, 1.0, 1.0},
    };
    return std::make_shared<trace::SyntheticTraceGenerator>(params);
}

/** A memory-thrashing synthetic segment. */
std::shared_ptr<trace::TraceSource>
memoryPhase(std::uint64_t ops, std::uint64_t seed)
{
    trace::SyntheticTraceParams params;
    params.numOps = ops;
    params.seed = seed;
    params.loadFrac = 0.45;
    params.storeFrac = 0.05;
    params.branchFrac = 0.10;
    params.hardBranchFrac = 0.0;
    params.easyTakenBias = 0.9995;
    params.indirectSwitchProb = 0.0;
    params.numBranchSites = 64;            // warms within one interval
    params.codeFootprintBytes = 16 * 1024; // no cold-code warmup
    params.regions = {
        {trace::AccessPattern::Random, 64 * 1024 * 1024, 64, 1.0, 1.0},
    };
    return std::make_shared<trace::SyntheticTraceGenerator>(params);
}

sim::SystemConfig
machine()
{
    return sim::SystemConfig::haswellXeonE52650Lv3();
}

TEST(PhaseAnalysis, RecoversPlantedTwoPhaseStructure)
{
    trace::PhasedTrace program({
        computePhase(450000, 1), // +50k consumed as warmup
        memoryPhase(400000, 2),
    });
    PhaseOptions options;
    options.intervalOps = 50000;
    options.warmupOps = 50000;
    const PhaseAnalysis analysis =
        analyzePhases(program, machine(), options);

    ASSERT_EQ(analysis.intervals.size(), 16u);
    EXPECT_EQ(analysis.phases.size(), 2u);
    // The first 8 intervals are one phase, the last 8 the other.
    const std::size_t first_label = analysis.labels[0];
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(analysis.labels[i], first_label) << i;
    for (int i = 8; i < 16; ++i)
        EXPECT_NE(analysis.labels[i], first_label) << i;
    // Weights are about half and half.
    for (const Phase &phase : analysis.phases)
        EXPECT_NEAR(phase.weight, 0.5, 0.01);
}

TEST(PhaseAnalysis, PhaseIpcsReflectBehaviour)
{
    trace::PhasedTrace program({
        computePhase(350000, 3), // +50k consumed as warmup
        memoryPhase(300000, 4),
    });
    PhaseOptions options;
    options.intervalOps = 50000;
    options.warmupOps = 50000;
    const PhaseAnalysis analysis =
        analyzePhases(program, machine(), options);
    ASSERT_EQ(analysis.phases.size(), 2u);
    const double fast = std::max(analysis.phases[0].meanIpc,
                                 analysis.phases[1].meanIpc);
    const double slow = std::min(analysis.phases[0].meanIpc,
                                 analysis.phases[1].meanIpc);
    EXPECT_GT(fast, 2.0 * slow);
}

TEST(PhaseAnalysis, UniformWorkloadIsOnePhase)
{
    auto uniform = computePhase(450000, 5);
    PhaseOptions options;
    options.intervalOps = 50000;
    options.warmupOps = 50000;
    const PhaseAnalysis analysis =
        analyzePhases(*uniform, machine(), options);
    EXPECT_EQ(analysis.phases.size(), 1u);
    EXPECT_NEAR(analysis.phases[0].weight, 1.0, 1e-12);
}

TEST(PhaseAnalysis, SampledIpcApproximatesFullRun)
{
    trace::PhasedTrace program({
        computePhase(350000, 6), // +50k consumed as warmup
        memoryPhase(200000, 7),
        computePhase(100000, 8),
    });
    PhaseOptions options;
    options.intervalOps = 50000;
    options.warmupOps = 50000;
    const PhaseAnalysis analysis =
        analyzePhases(program, machine(), options);
    // Simulating only the representatives must estimate whole-run
    // IPC within 15% -- the entire point of simulation points.
    EXPECT_NEAR(analysis.sampledIpcEstimate(), analysis.fullIpc(),
                analysis.fullIpc() * 0.15);
}

TEST(PhaseAnalysis, RepresentativeBelongsToItsPhase)
{
    trace::PhasedTrace program({
        computePhase(250000, 9), // +50k consumed as warmup
        memoryPhase(200000, 10),
    });
    PhaseOptions options;
    options.intervalOps = 50000;
    options.warmupOps = 50000;
    const PhaseAnalysis analysis =
        analyzePhases(program, machine(), options);
    for (const Phase &phase : analysis.phases) {
        const std::set<std::size_t> members(phase.intervals.begin(),
                                            phase.intervals.end());
        EXPECT_TRUE(members.count(phase.representative));
        EXPECT_EQ(analysis.labels[phase.representative], phase.id);
    }
}

TEST(PhaseAnalysis, MaxPhasesBoundsDetection)
{
    trace::PhasedTrace program({
        computePhase(200000, 11), // +50k consumed as warmup
        memoryPhase(150000, 12),
        computePhase(150000, 13),
        memoryPhase(150000, 14),
    });
    PhaseOptions options;
    options.intervalOps = 50000;
    options.warmupOps = 50000;
    options.maxPhases = 2;
    const PhaseAnalysis analysis =
        analyzePhases(program, machine(), options);
    EXPECT_LE(analysis.phases.size(), 2u);
    // The alternating structure still maps to two recurring phases.
    EXPECT_EQ(analysis.phases.size(), 2u);
}

TEST(PhaseAnalysis, ShortTraceDegeneratesToOneInterval)
{
    auto tiny = computePhase(20000, 15);
    PhaseOptions options;
    options.intervalOps = 50000;
    const PhaseAnalysis analysis =
        analyzePhases(*tiny, machine(), options);
    EXPECT_EQ(analysis.intervals.size(), 1u);
    EXPECT_EQ(analysis.phases.size(), 1u);
    EXPECT_DOUBLE_EQ(analysis.fullIpc(),
                     analysis.sampledIpcEstimate());
}

TEST(PhaseAnalysis, SignatureNamesExported)
{
    EXPECT_EQ(phaseSignatureNames().size(), kPhaseSignatureDims);
}

TEST(PhaseAnalysisDeathTest, RejectsDegenerateOptions)
{
    auto source = computePhase(10000, 16);
    PhaseOptions options;
    options.intervalOps = 10;
    EXPECT_DEATH(analyzePhases(*source, machine(), options),
                 "too small");
}

} // namespace
} // namespace core
} // namespace spec17
