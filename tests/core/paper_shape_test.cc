/**
 * @file
 * The paper-shape regression suite: the qualitative claims of
 * Limaye & Adegbija that EXPERIMENTS.md documents, asserted as
 * tests so a refactor that silently breaks the reproduction fails
 * CI instead of shipping wrong tables. Runs one shared reduced-size
 * sweep (~8s).
 */

#include <gtest/gtest.h>

#include <map>

#include "core/compare.hh"
#include "core/metrics.hh"
#include "suite/runner.hh"

namespace spec17 {
namespace core {
namespace {

using workloads::InputSize;
using workloads::SuiteKind;

const std::vector<Metrics> &
refMetrics()
{
    static const std::vector<Metrics> metrics = [] {
        suite::RunnerOptions options;
        options.sampleOps = 500000;
        options.warmupOps = 150000;
        return withoutErrored(deriveMetrics(
            suite::SuiteRunner(options).runAll(
                workloads::cpu2017Suite(), InputSize::Ref)));
    }();
    return metrics;
}

const Metrics &
metricOf(const std::string &prefix)
{
    for (const auto &m : refMetrics()) {
        if (m.name.rfind(prefix, 0) == 0)
            return m;
    }
    ADD_FAILURE() << prefix << " not found";
    static Metrics dummy;
    return dummy;
}

TEST(PaperShape, X264IsTheIntIpcChampion)
{
    // Paper Fig. 1: 525.x264_r 3.024 and 625.x264_s 3.038 are the
    // highest int IPCs.
    for (const auto &m : intSubset(refMetrics())) {
        if (m.name.rfind("525.x264", 0) == 0
            || m.name.rfind("625.x264", 0) == 0) {
            continue;
        }
        EXPECT_LT(m.ipc, metricOf("525.x264_r").ipc + 0.05) << m.name;
    }
    EXPECT_GT(metricOf("525.x264_r").ipc, 2.5);
}

TEST(PaperShape, McfIsTheRateIntIpcFloor)
{
    const double mcf = metricOf("505.mcf_r").ipc;
    for (const auto &m : bySuite(refMetrics(), SuiteKind::RateInt))
        EXPECT_GE(m.ipc, mcf - 0.05) << m.name;
    EXPECT_LT(mcf, 1.1);
}

TEST(PaperShape, LbmSIsTheSuiteIpcFloor)
{
    const double lbm = metricOf("619.lbm_s").ipc;
    for (const auto &m : refMetrics())
        EXPECT_GE(m.ipc, lbm - 0.02) << m.name;
    EXPECT_LT(lbm, 0.5);
}

TEST(PaperShape, Pop2TopsSpeedFp)
{
    const double pop2 = metricOf("628.pop2_s").ipc;
    for (const auto &m : bySuite(refMetrics(), SuiteKind::SpeedFp))
        EXPECT_LE(m.ipc, pop2 + 0.05) << m.name;
}

TEST(PaperShape, LeelaHasTheWorstMispredicts)
{
    const double leela = metricOf("541.leela_r").mispredictPct;
    for (const auto &m : refMetrics()) {
        if (m.name.rfind("541.leela", 0) == 0
            || m.name.rfind("641.leela", 0) == 0) {
            continue;
        }
        EXPECT_LT(m.mispredictPct, leela) << m.name;
    }
    EXPECT_NEAR(leela, 8.656, 1.5);
}

TEST(PaperShape, McfBranchiestLbmLeastBranchy)
{
    // Paper Fig. 3.
    const double mcf = metricOf("505.mcf_r").branchPct;
    const double lbm = metricOf("519.lbm_r").branchPct;
    for (const auto &m : refMetrics()) {
        if (m.name.rfind("505.mcf", 0) == 0
            || m.name.rfind("605.mcf", 0) == 0) {
            continue;
        }
        EXPECT_LT(m.branchPct, mcf) << m.name;
        if (m.name != "519.lbm_r")
            EXPECT_GT(m.branchPct, lbm - 0.01) << m.name;
    }
    EXPECT_NEAR(mcf, 31.277, 2.0);
    EXPECT_NEAR(lbm, 1.198, 0.3);
}

TEST(PaperShape, SpeedFpIpcCollapsesVsRateFp)
{
    // Paper: speed fp IPC drops 57-60% vs rate fp.
    const double rate_fp =
        aggregate(bySuite(refMetrics(), SuiteKind::RateFp)).ipc.mean;
    const double speed_fp =
        aggregate(bySuite(refMetrics(), SuiteKind::SpeedFp)).ipc.mean;
    EXPECT_LT(speed_fp, 0.6 * rate_fp);
    // ... while int IPC stays close between rate and speed.
    const double rate_int =
        aggregate(bySuite(refMetrics(), SuiteKind::RateInt)).ipc.mean;
    const double speed_int =
        aggregate(bySuite(refMetrics(), SuiteKind::SpeedInt)).ipc.mean;
    EXPECT_NEAR(speed_int, rate_int, 0.25 * rate_int);
}

TEST(PaperShape, IntMispredictsWorseThanFp)
{
    // Paper Table VII / Fig. 6.
    const double int_misp =
        aggregate(intSubset(refMetrics())).mispredictPct.mean;
    const double fp_misp =
        aggregate(fpSubset(refMetrics())).mispredictPct.mean;
    EXPECT_GT(int_misp, 1.5 * fp_misp);
}

TEST(PaperShape, L2MissRatesExceedL3ForMostPairs)
{
    // Paper Section IV-D: L2 miss rate > L3 miss rate for most pairs
    // on this 30 MB-L3 machine.
    int l2_gt_l3 = 0;
    for (const auto &m : refMetrics())
        l2_gt_l3 += m.l2MissPct > m.l3MissPct;
    EXPECT_GT(l2_gt_l3, int(refMetrics().size() / 2));
}

TEST(PaperShape, FootprintCorrelatesNegativelyWithIpc)
{
    // Paper Section IV-C: RSS -0.465, VSZ -0.510 vs IPC.
    EXPECT_LT(correlationWithIpc(refMetrics(), &Metrics::rssGiB),
              -0.2);
    EXPECT_LT(correlationWithIpc(refMetrics(), &Metrics::vszGiB),
              -0.2);
    // And all three miss-rate correlations are negative too.
    EXPECT_LT(correlationWithIpc(refMetrics(), &Metrics::l1MissPct),
              0.0);
    EXPECT_LT(correlationWithIpc(refMetrics(), &Metrics::l2MissPct),
              0.0);
    EXPECT_LT(correlationWithIpc(refMetrics(), &Metrics::l3MissPct),
              0.0);
}

TEST(PaperShape, XzSHasTheLargestFootprint)
{
    const double xz = metricOf("657.xz_s").rssGiB;
    for (const auto &m : refMetrics())
        EXPECT_LE(m.rssGiB, xz + 1e-9) << m.name;
    EXPECT_NEAR(xz, 12.385, 0.05);
}

} // namespace
} // namespace core
} // namespace spec17
