#include "core/characterizer.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace core {
namespace {

using workloads::InputSize;
using workloads::SuiteGeneration;

CharacterizerOptions
fastOptions(const char *tag)
{
    CharacterizerOptions options;
    options.runner.sampleOps = 120000;
    options.runner.warmupOps = 40000;
    options.cachePath =
        std::string(::testing::TempDir()) + "/spec17_char_" + tag;
    return options;
}

TEST(Characterizer, MemoizesResultsInProcess)
{
    Characterizer session(fastOptions("memo"));
    const auto &first =
        session.results(SuiteGeneration::Cpu2017, InputSize::Ref);
    const auto &second =
        session.results(SuiteGeneration::Cpu2017, InputSize::Ref);
    EXPECT_EQ(&first, &second); // same vector, no recompute
    EXPECT_EQ(first.size(), 64u);
}

TEST(Characterizer, MetricsMatchResults)
{
    Characterizer session(fastOptions("metrics"));
    const auto metrics =
        session.metrics(SuiteGeneration::Cpu2006, InputSize::Ref);
    EXPECT_EQ(metrics.size(), 29u);
    for (const auto &m : metrics) {
        EXPECT_GT(m.ipc, 0.0);
        EXPECT_GT(m.seconds, 0.0);
    }
}

TEST(Characterizer, RateAndSpeedSlicesPartitionThePairs)
{
    Characterizer session(fastOptions("slices"));
    const auto rate = session.redundancyFor(/*speed=*/false);
    const auto speed = session.redundancyFor(/*speed=*/true);
    // 64 ref pairs - 1 errored (cam4_s, a speed pair):
    // rate = 20 + 16 = 36; speed = 17 + 10 - 1 = 27... minus? cam4_s
    // is speed fp with 1 ref input; speed fp has 11 ref pairs
    // (bwaves_s x2), so speed = 17 + 11 - 1 = 27 usable pairs.
    EXPECT_EQ(rate.pairNames.size(), 36u);
    EXPECT_EQ(speed.pairNames.size(), 27u);
    for (const auto &name : rate.pairNames)
        EXPECT_EQ(name.front(), '5') << name; // rate apps are 5xx
    for (const auto &name : speed.pairNames)
        EXPECT_EQ(name.front(), '6') << name; // speed apps are 6xx
}

TEST(Characterizer, SecondSessionLoadsFromDiskCache)
{
    const auto options = fastOptions("disk");
    suite::ResultCache(options.cachePath).invalidate();
    double first_seconds, second_seconds;
    {
        Characterizer session(options);
        first_seconds = session
            .results(SuiteGeneration::Cpu2006, InputSize::Test)
            .front().seconds;
    }
    {
        Characterizer session(options);
        second_seconds = session
            .results(SuiteGeneration::Cpu2006, InputSize::Test)
            .front().seconds;
    }
    EXPECT_DOUBLE_EQ(first_seconds, second_seconds);
    suite::ResultCache(options.cachePath).invalidate();
}

} // namespace
} // namespace core
} // namespace spec17
