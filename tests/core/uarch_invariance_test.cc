/**
 * @file
 * The paper's methodological premise, tested: because the PCA
 * consumes only microarchitecture-INDEPENDENT characteristics
 * (Table VIII), the redundancy structure -- and therefore the
 * suggested subset -- must be essentially the same no matter which
 * machine measured the suite. We characterize the rate pairs on two
 * deliberately different machines and compare the clusterings.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/redundancy.hh"
#include "core/subset.hh"
#include "suite/runner.hh"

namespace spec17 {
namespace core {
namespace {

using workloads::InputSize;

std::vector<suite::PairResult>
ratePairsOn(const sim::SystemConfig &system)
{
    suite::RunnerOptions options;
    options.system = system;
    options.sampleOps = 250000;
    options.warmupOps = 80000;
    suite::SuiteRunner runner(options);
    std::vector<suite::PairResult> results;
    for (const auto &pair :
         enumeratePairs(workloads::cpu2017Suite(), InputSize::Ref)) {
        if (!workloads::isSpeedSuite(pair.profile->suite))
            results.push_back(runner.runPair(pair));
    }
    return results;
}

/** Pairwise co-clustering agreement (Rand index) of two cuts. */
double
randIndex(const std::vector<std::size_t> &a,
          const std::vector<std::size_t> &b)
{
    std::size_t agree = 0, total = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        for (std::size_t j = i + 1; j < a.size(); ++j) {
            agree += (a[i] == a[j]) == (b[i] == b[j]);
            ++total;
        }
    }
    return double(agree) / double(total);
}

TEST(UarchInvariance, SubsetStructureSurvivesAMachineChange)
{
    // Machine A: the paper's Table I Haswell.
    const auto baseline = ratePairsOn(
        sim::SystemConfig::haswellXeonE52650Lv3());

    // Machine B: a very different box -- half-width core, quarter
    // L3, weak bimodal predictor, stride prefetcher.
    sim::SystemConfig other = sim::SystemConfig::haswellXeonE52650Lv3();
    other.core.dispatchWidth = 2;
    other.core.robSize = 96;
    other.hierarchy.l3.sizeBytes = 8 * 1024 * 1024;
    other.hierarchy.l3.assoc = 16;
    other.branchPredictor = "bimodal";
    other.hierarchy.prefetcher = "stride";
    const auto changed = ratePairsOn(other);

    // Sanity: the machines really do measure differently.
    double ipc_gap = 0.0;
    for (std::size_t i = 0; i < baseline.size(); ++i)
        ipc_gap += std::abs(baseline[i].ipc() - changed[i].ipc());
    EXPECT_GT(ipc_gap / double(baseline.size()), 0.2);

    // But the microarchitecture-independent analysis agrees.
    const auto analysis_a = analyzeRedundancy(baseline);
    const auto analysis_b = analyzeRedundancy(changed);
    ASSERT_EQ(analysis_a.pairNames, analysis_b.pairNames);

    const std::size_t k = 12; // the paper's rate cluster count
    const double agreement = randIndex(analysis_a.dendrogram.cut(k),
                                       analysis_b.dendrogram.cut(k));
    EXPECT_GT(agreement, 0.9)
        << "clustering should be microarchitecture-invariant";

    // The chosen representatives overlap heavily too (execution-time
    // rankings inside a cluster can shuffle, membership cannot).
    const auto subset_a = suggestSubset(analysis_a, k);
    const auto subset_b = suggestSubset(analysis_b, k);
    std::set<std::string> members_a, members_b;
    for (const auto &rep : subset_a.representatives)
        members_a.insert(rep.name);
    for (const auto &rep : subset_b.representatives)
        members_b.insert(rep.name);
    std::size_t common = 0;
    for (const auto &name : members_a)
        common += members_b.count(name);
    EXPECT_GE(common, members_a.size() * 2 / 3);
}

TEST(UarchInvariance, PcaFeaturesThemselvesBarelyMove)
{
    const auto baseline = ratePairsOn(
        sim::SystemConfig::haswellXeonE52650Lv3());
    sim::SystemConfig other = sim::SystemConfig::haswellXeonE52650Lv3();
    other.branchPredictor = "static-taken";
    other.hierarchy.l2.sizeBytes = 1024 * 1024;
    other.hierarchy.l2.assoc = 16;
    const auto changed = ratePairsOn(other);

    for (std::size_t i = 0; i < baseline.size(); ++i) {
        const auto fa = pcaFeatureVector(baseline[i]);
        const auto fb = pcaFeatureVector(changed[i]);
        // Mix percentages (indices 3..5, 7, 13..17) are measured from
        // the same trace: identical streams, so near-identical values.
        for (std::size_t d : {3u, 4u, 5u, 7u}) {
            EXPECT_NEAR(fa[d], fb[d], 0.1)
                << baseline[i].name << " dim " << d;
        }
        // Footprints are profile-declared: exactly equal.
        EXPECT_DOUBLE_EQ(fa[18], fb[18]) << baseline[i].name;
        EXPECT_DOUBLE_EQ(fa[19], fb[19]) << baseline[i].name;
    }
}

} // namespace
} // namespace core
} // namespace spec17
