#include "core/redundancy.hh"

#include <gtest/gtest.h>

#include "core/subset.hh"

namespace spec17 {
namespace core {
namespace {

using workloads::InputSize;

suite::RunnerOptions
fastOptions()
{
    suite::RunnerOptions options;
    options.sampleOps = 120000;
    options.warmupOps = 40000;
    return options;
}

/** One shared sweep over the CPU2017 ref pairs (expensive-ish). */
const std::vector<suite::PairResult> &
refResults()
{
    static const std::vector<suite::PairResult> results =
        suite::SuiteRunner(fastOptions())
            .runAll(workloads::cpu2017Suite(), InputSize::Ref);
    return results;
}

TEST(PcaFeatures, TwentyNamedCharacteristics)
{
    const auto &names = pcaFeatureNames();
    ASSERT_EQ(names.size(), kNumPcaFeatures);
    EXPECT_EQ(names.front(), "inst_retired.any");
    EXPECT_EQ(names.back(), "vsz");
    const auto vec = pcaFeatureVector(refResults().front());
    EXPECT_EQ(vec.size(), kNumPcaFeatures);
}

TEST(PcaFeatures, PercentagesAreConsistent)
{
    for (const auto &result : refResults()) {
        if (result.errored)
            continue;
        const auto v = pcaFeatureVector(result);
        // total_mem% == load% + store%.
        EXPECT_NEAR(v[5], v[3] + v[4], 1e-9) << result.name;
        // Branch-kind percentages sum to ~100.
        EXPECT_NEAR(v[13] + v[14] + v[15] + v[16] + v[17], 100.0, 1e-6)
            << result.name;
        // Absolute counts are extrapolated to paper scale (hundreds
        // of billions of instructions and up).
        EXPECT_GT(v[0], 1e11) << result.name;
    }
}

TEST(PcaFeatures, MatrixSkipsErroredPairs)
{
    std::vector<std::size_t> kept;
    const auto m = pcaFeatureMatrix(refResults(), kept);
    EXPECT_EQ(m.rows(), 63u); // 64 ref pairs - cam4_s
    EXPECT_EQ(m.cols(), kNumPcaFeatures);
    for (std::size_t index : kept)
        EXPECT_FALSE(refResults()[index].errored);
}

TEST(Redundancy, KeepsEnoughComponentsForVarianceTarget)
{
    const RedundancyAnalysis analysis = analyzeRedundancy(refResults());
    EXPECT_GE(analysis.numComponents, 2u);
    EXPECT_LE(analysis.numComponents, kNumPcaFeatures);
    EXPECT_GE(
        analysis.pca.cumulativeVariance[analysis.numComponents - 1],
        0.76);
    EXPECT_EQ(analysis.pcScores.rows(), 63u);
    EXPECT_EQ(analysis.pcScores.cols(), analysis.numComponents);
    EXPECT_EQ(analysis.pairNames.size(), 63u);
    EXPECT_EQ(analysis.factors.size(), analysis.numComponents);
}

TEST(Redundancy, SameInputsOfOneAppSitCloseInPcSpace)
{
    // The paper's Table IX check: 603.bwaves_s-in1/-in2 cluster
    // together and far from 607.cactuBSSN_s.
    const RedundancyAnalysis analysis = analyzeRedundancy(refResults());
    auto row_of = [&](const std::string &name) {
        for (std::size_t i = 0; i < analysis.pairNames.size(); ++i) {
            if (analysis.pairNames[i] == name)
                return i;
        }
        ADD_FAILURE() << name << " not analyzed";
        return std::size_t(0);
    };
    const std::size_t in1 = row_of("603.bwaves_s-in1");
    const std::size_t in2 = row_of("603.bwaves_s-in2");
    const std::size_t cactu = row_of("607.cactuBSSN_s");
    const double twin_dist =
        cluster::euclidean(analysis.pcScores, in1, in2);
    const double cross_dist =
        cluster::euclidean(analysis.pcScores, in1, cactu);
    EXPECT_LT(twin_dist * 3.0, cross_dist);
}

TEST(Redundancy, DendrogramCoversAllPairs)
{
    const RedundancyAnalysis analysis = analyzeRedundancy(refResults());
    EXPECT_EQ(analysis.dendrogram.numLeaves(),
              analysis.pairNames.size());
    const auto labels = analysis.dendrogram.cut(10);
    EXPECT_EQ(labels.size(), analysis.pairNames.size());
}

TEST(Subset, ShortestMemberRepresentsEachCluster)
{
    const RedundancyAnalysis analysis = analyzeRedundancy(refResults());
    const SubsetSuggestion subset = suggestSubset(analysis, 12);
    EXPECT_EQ(subset.numClusters(), 12u);
    // Every representative is no slower than the members it covers.
    for (const auto &rep : subset.representatives) {
        auto seconds_of = [&](const std::string &name) {
            for (std::size_t i = 0; i < analysis.pairNames.size(); ++i)
                if (analysis.pairNames[i] == name)
                    return analysis.pairSeconds[i];
            return -1.0;
        };
        for (const auto &covered : rep.covers)
            EXPECT_LE(rep.seconds, seconds_of(covered)) << rep.name;
    }
    // Subset time = sum of representative times, < full time.
    double sum = 0.0;
    for (const auto &rep : subset.representatives)
        sum += rep.seconds;
    EXPECT_DOUBLE_EQ(sum, subset.subsetSeconds);
    EXPECT_LT(subset.subsetSeconds, subset.fullSeconds);
    EXPECT_GT(subset.savingPct(), 0.0);
    EXPECT_LT(subset.savingPct(), 100.0);
}

TEST(Subset, ParetoKneeGivesNontrivialClusterCount)
{
    const RedundancyAnalysis analysis = analyzeRedundancy(refResults());
    const SubsetSuggestion subset = suggestSubset(analysis);
    EXPECT_GT(subset.numClusters(), 1u);
    EXPECT_LT(subset.numClusters(), analysis.pairNames.size());
    // The paper saves 57-62% at its knees; ours should be the same
    // order of magnitude.
    EXPECT_GT(subset.savingPct(), 25.0);
}

TEST(Subset, SweepCoversEveryClusterCount)
{
    const RedundancyAnalysis analysis = analyzeRedundancy(refResults());
    const SubsetSuggestion subset = suggestSubset(analysis);
    EXPECT_EQ(subset.sweep.size(), analysis.pairNames.size());
    // SSE decreases (non-strictly) with more clusters.
    for (std::size_t i = 1; i < subset.sweep.size(); ++i)
        EXPECT_LE(subset.sweep[i].sse, subset.sweep[i - 1].sse + 1e-9);
}

TEST(SubsetDeathTest, ForcedCountMustBeInRange)
{
    const RedundancyAnalysis analysis = analyzeRedundancy(refResults());
    EXPECT_DEATH(suggestSubset(analysis, 1000), "exceeds pair count");
}

} // namespace
} // namespace core
} // namespace spec17
