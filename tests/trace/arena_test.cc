/**
 * @file
 * Trace-arena golden tests: a captured arena replayed through
 * ReplaySource must be draw-for-draw identical to live generation on
 * every delivery surface (next(), nextBatch(), nextBatchSoA(), the
 * zero-copy nextLanes()), mixed freely and across reset(); the S17A
 * spill format must round-trip an arena exactly and reject torn or
 * foreign files by returning nullptr (never aborting a run).
 */

#include "trace/arena.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace spec17 {
namespace trace {
namespace {

SyntheticTraceParams
params(std::uint64_t num_ops = 20000, std::uint64_t seed = 99)
{
    SyntheticTraceParams p;
    p.numOps = num_ops;
    p.seed = seed;
    p.loadFrac = 0.25;
    p.storeFrac = 0.10;
    p.branchFrac = 0.15;
    p.regions = {
        {AccessPattern::Sequential, 256 * 1024, 64, 1.0, 1.0},
        {AccessPattern::PointerChase, 2 * 1024 * 1024, 64, 1.0, 0.5},
    };
    return p;
}

std::vector<isa::MicroOp>
drainPerOp(TraceSource &source)
{
    std::vector<isa::MicroOp> ops;
    isa::MicroOp op;
    while (source.next(op))
        ops.push_back(op);
    return ops;
}

std::vector<isa::MicroOp>
drainBatched(TraceSource &source, std::size_t batch)
{
    std::vector<isa::MicroOp> ops;
    std::vector<isa::MicroOp> buf(batch);
    while (true) {
        const std::size_t got = source.nextBatch(buf.data(), batch);
        ops.insert(ops.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(got));
        if (got < batch)
            return ops;
    }
}

void
expectSameStream(const std::vector<isa::MicroOp> &a,
                 const std::vector<isa::MicroOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cls, b[i].cls) << "op " << i;
        EXPECT_EQ(a[i].branch, b[i].branch) << "op " << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << "op " << i;
        EXPECT_EQ(a[i].effAddr, b[i].effAddr) << "op " << i;
        EXPECT_EQ(a[i].size, b[i].size) << "op " << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << "op " << i;
        EXPECT_EQ(a[i].target, b[i].target) << "op " << i;
        EXPECT_EQ(a[i].depOnLoad, b[i].depOnLoad) << "op " << i;
        EXPECT_EQ(a[i].depOnPrev, b[i].depOnPrev) << "op " << i;
        if (::testing::Test::HasFailure())
            return; // one divergence is enough diagnostics
    }
}

std::shared_ptr<const TraceArena>
capture(const SyntheticTraceParams &p)
{
    return std::make_shared<const TraceArena>(captureArena(p));
}

TEST(Arena, CaptureDrainsTheWholeStreamOnce)
{
    const SyntheticTraceParams p = params();
    SyntheticTraceGenerator live(p);
    const std::vector<isa::MicroOp> reference = drainPerOp(live);

    const auto arena = capture(p);
    EXPECT_EQ(arena->numOps, reference.size());
    EXPECT_EQ(arena->virtualReserveBytes, live.virtualReserveBytes());
    EXPECT_GT(arena->byteSize(), 0u);
}

TEST(Arena, ReplayMatchesLivePerOp)
{
    const SyntheticTraceParams p = params();
    SyntheticTraceGenerator live(p);
    ReplaySource replay(capture(p));
    expectSameStream(drainPerOp(live), drainPerOp(replay));
    EXPECT_EQ(replay.virtualReserveBytes(), live.virtualReserveBytes());
}

TEST(Arena, ReplayMatchesLiveAtAnyBatchSize)
{
    const SyntheticTraceParams p = params();
    SyntheticTraceGenerator live(p);
    const std::vector<isa::MicroOp> reference = drainPerOp(live);
    for (const std::size_t batch :
         {std::size_t(1), std::size_t(7), std::size_t(1000),
          std::size_t(4096), std::size_t(100000)}) {
        ReplaySource replay(capture(p));
        expectSameStream(reference, drainBatched(replay, batch));
    }
}

TEST(Arena, SurfacesMixFreelyAndResetRewindsExactly)
{
    const SyntheticTraceParams p = params();
    SyntheticTraceGenerator live(p);
    const std::vector<isa::MicroOp> reference = drainPerOp(live);

    ReplaySource replay(capture(p));
    std::vector<isa::MicroOp> mixed;
    isa::MicroOp op;
    for (int i = 0; i < 13 && replay.next(op); ++i)
        mixed.push_back(op);
    std::vector<isa::MicroOp> buf(777);
    std::size_t got = replay.nextBatch(buf.data(), buf.size());
    mixed.insert(mixed.end(), buf.begin(),
                 buf.begin() + static_cast<std::ptrdiff_t>(got));
    MicroOpBatch lanes;
    got = replay.nextBatchSoA(lanes, 0, 500);
    for (std::size_t i = 0; i < got; ++i)
        mixed.push_back(lanes.get(i));
    std::size_t at = 0;
    const MicroOpBatch *zero = replay.nextLanes(1000, at, got);
    ASSERT_NE(zero, nullptr);
    for (std::size_t i = 0; i < got; ++i)
        mixed.push_back(zero->get(at + i));
    while (replay.next(op))
        mixed.push_back(op);
    expectSameStream(reference, mixed);

    // reset() after a fully consumed stream replays it from the top.
    replay.reset();
    EXPECT_EQ(replay.deliveredOps(), 0u);
    expectSameStream(reference, drainPerOp(replay));
}

TEST(Arena, NextLanesIsZeroCopyIntoTheArena)
{
    const SyntheticTraceParams p = params(5000);
    const auto arena = capture(p);
    ReplaySource replay(arena);

    std::size_t at = 0, got = 0;
    const MicroOpBatch *lanes = replay.nextLanes(1024, at, got);
    ASSERT_NE(lanes, nullptr);
    // Pointer identity: the source serves the arena's own lanes, not
    // a copy, and successive pulls advance the slot offset.
    EXPECT_EQ(lanes, &arena->lanes);
    EXPECT_EQ(at, 0u);
    EXPECT_EQ(got, 1024u);
    lanes = replay.nextLanes(1024, at, got);
    EXPECT_EQ(lanes, &arena->lanes);
    EXPECT_EQ(at, 1024u);

    // The tail pull is short, then the stream reports exhaustion.
    std::size_t drained = 2048;
    while (true) {
        lanes = replay.nextLanes(1024, at, got);
        ASSERT_EQ(lanes, &arena->lanes);
        drained += got;
        if (got < 1024)
            break;
    }
    EXPECT_EQ(drained, arena->numOps);
}

TEST(Arena, SpillRoundTripsExactly)
{
    const SyntheticTraceParams p = params(9000, 1234);
    const auto arena = capture(p);
    const std::string path =
        std::string(::testing::TempDir()) + "/arena_roundtrip.s17a";
    ASSERT_TRUE(saveArena(path, *arena));

    std::unique_ptr<TraceArena> loaded = loadArena(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->numOps, arena->numOps);
    EXPECT_EQ(loaded->virtualReserveBytes, arena->virtualReserveBytes);
    EXPECT_EQ(loaded->byteSize(), arena->byteSize());
    ReplaySource original(arena);
    ReplaySource reloaded(
        std::shared_ptr<const TraceArena>(std::move(loaded)));
    expectSameStream(drainPerOp(original), drainPerOp(reloaded));
    std::remove(path.c_str());
}

TEST(Arena, LoadRejectsMissingTornAndForeignFiles)
{
    const std::string base = ::testing::TempDir();
    EXPECT_EQ(loadArena(base + "/no_such_arena.s17a"), nullptr);

    // Torn spill: a valid file truncated mid-lanes must be rejected,
    // not partially loaded.
    const SyntheticTraceParams p = params(4000);
    const auto arena = capture(p);
    const std::string path = base + "/arena_torn.s17a";
    ASSERT_TRUE(saveArena(path, *arena));
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(bytes.size(), 64u);
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() / 2));
    torn.close();
    EXPECT_EQ(loadArena(path), nullptr);

    // Foreign magic: not an S17A file at all.
    std::ofstream foreign(path, std::ios::binary | std::ios::trunc);
    foreign << "definitely not an arena";
    foreign.close();
    EXPECT_EQ(loadArena(path), nullptr);
    std::remove(path.c_str());
}

TEST(Arena, DescribeTraceParamsIsAnExactKey)
{
    const SyntheticTraceParams a = params();
    EXPECT_EQ(describeTraceParams(a), describeTraceParams(params()));

    SyntheticTraceParams b = params();
    b.seed = 100;
    EXPECT_NE(describeTraceParams(a), describeTraceParams(b));

    // Doubles are keyed exactly (hex-float), so a change below any
    // decimal rounding still produces a distinct key.
    SyntheticTraceParams c = params();
    c.loadFrac = a.loadFrac + 1e-15;
    EXPECT_NE(describeTraceParams(a), describeTraceParams(c));
}

} // namespace
} // namespace trace
} // namespace spec17
