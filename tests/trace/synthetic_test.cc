#include "trace/synthetic.hh"

#include <gtest/gtest.h>

#include <map>

namespace spec17 {
namespace trace {
namespace {

SyntheticTraceParams
baseParams()
{
    SyntheticTraceParams params;
    params.numOps = 200000;
    params.seed = 42;
    params.loadFrac = 0.25;
    params.storeFrac = 0.10;
    params.branchFrac = 0.15;
    params.regions = {
        {AccessPattern::Sequential, 256 * 1024, 64, 1.0, 1.0},
        {AccessPattern::Random, 4 * 1024 * 1024, 64, 1.0, 1.0},
    };
    return params;
}

struct MixCounts
{
    std::uint64_t total = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t conditional = 0;
    std::uint64_t fp = 0;
    std::uint64_t depLoads = 0;
};

MixCounts
countMix(TraceSource &source)
{
    MixCounts mix;
    isa::MicroOp op;
    while (source.next(op)) {
        ++mix.total;
        mix.loads += op.isLoad();
        mix.stores += op.isStore();
        mix.branches += op.isBranch();
        mix.conditional += op.isConditionalBranch();
        mix.fp += (op.cls == isa::UopClass::FpAdd
                   || op.cls == isa::UopClass::FpMul
                   || op.cls == isa::UopClass::FpDiv);
        mix.depLoads += (op.isLoad() && op.depOnLoad);
    }
    return mix;
}

TEST(Synthetic, EmitsExactlyRequestedOps)
{
    SyntheticTraceGenerator gen(baseParams());
    const MixCounts mix = countMix(gen);
    EXPECT_EQ(mix.total, baseParams().numOps);
}

TEST(Synthetic, InstructionMixMatchesParams)
{
    SyntheticTraceGenerator gen(baseParams());
    const MixCounts mix = countMix(gen);
    const double n = static_cast<double>(mix.total);
    EXPECT_NEAR(mix.loads / n, 0.25, 0.01);
    EXPECT_NEAR(mix.stores / n, 0.10, 0.01);
    EXPECT_NEAR(mix.branches / n, 0.15, 0.01);
}

TEST(Synthetic, ConditionalShareOfBranchesMatches)
{
    SyntheticTraceParams params = baseParams();
    params.condFrac = 0.787; // the paper's 78.7% conditional share
    SyntheticTraceGenerator gen(params);
    const MixCounts mix = countMix(gen);
    EXPECT_NEAR(mix.conditional / double(mix.branches), 0.787, 0.02);
}

TEST(Synthetic, FpFractionControlsComputeClasses)
{
    SyntheticTraceParams params = baseParams();
    params.fpFrac = 1.0;
    SyntheticTraceGenerator gen(params);
    const MixCounts mix = countMix(gen);
    const std::uint64_t compute =
        mix.total - mix.loads - mix.stores - mix.branches;
    EXPECT_EQ(mix.fp, compute);
}

TEST(Synthetic, DeterministicAndResettable)
{
    SyntheticTraceGenerator a(baseParams());
    SyntheticTraceGenerator b(baseParams());
    isa::MicroOp oa, ob;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(oa));
        ASSERT_TRUE(b.next(ob));
        ASSERT_EQ(oa.pc, ob.pc) << "op " << i;
        ASSERT_EQ(oa.cls, ob.cls) << "op " << i;
        ASSERT_EQ(oa.effAddr, ob.effAddr) << "op " << i;
        ASSERT_EQ(oa.taken, ob.taken) << "op " << i;
    }
    a.reset();
    SyntheticTraceGenerator c(baseParams());
    isa::MicroOp oc;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(oa));
        ASSERT_TRUE(c.next(oc));
        ASSERT_EQ(oa.effAddr, oc.effAddr) << "op " << i;
    }
}

TEST(Synthetic, DifferentSeedsGiveDifferentStreams)
{
    SyntheticTraceParams params = baseParams();
    SyntheticTraceGenerator a(params);
    params.seed = 43;
    SyntheticTraceGenerator b(params);
    isa::MicroOp oa, ob;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        a.next(oa);
        b.next(ob);
        same += (oa.cls == ob.cls && oa.effAddr == ob.effAddr);
    }
    EXPECT_LT(same, 900);
}

TEST(Synthetic, AddressesStayInsideRegions)
{
    SyntheticTraceParams params = baseParams();
    SyntheticTraceGenerator gen(params);
    const std::uint64_t base0 = gen.regionBase(0);
    const std::uint64_t base1 = gen.regionBase(1);
    EXPECT_GT(base1, base0 + params.regions[0].sizeBytes);

    isa::MicroOp op;
    while (gen.next(op)) {
        if (!op.isMemory())
            continue;
        const bool in0 = op.effAddr >= base0
            && op.effAddr < base0 + params.regions[0].sizeBytes;
        const bool in1 = op.effAddr >= base1
            && op.effAddr < base1 + params.regions[1].sizeBytes;
        ASSERT_TRUE(in0 || in1) << std::hex << op.effAddr;
    }
}

TEST(Synthetic, PointerChaseRegionsMarkDependentLoads)
{
    SyntheticTraceParams params = baseParams();
    params.regions = {
        {AccessPattern::PointerChase, 1024 * 1024, 64, 1.0, 1.0},
    };
    SyntheticTraceGenerator gen(params);
    const MixCounts mix = countMix(gen);
    EXPECT_EQ(mix.depLoads, mix.loads);
}

TEST(Synthetic, LoadStoreRegionWeightsRouteTraffic)
{
    SyntheticTraceParams params = baseParams();
    // Region 0 takes all loads, region 1 all stores.
    params.regions[0].loadWeight = 1.0;
    params.regions[0].storeWeight = 0.0;
    params.regions[1].loadWeight = 0.0;
    params.regions[1].storeWeight = 1.0;
    SyntheticTraceGenerator gen(params);
    const std::uint64_t base0 = gen.regionBase(0);
    const std::uint64_t split = gen.regionBase(1);
    isa::MicroOp op;
    while (gen.next(op)) {
        if (op.isLoad()) {
            ASSERT_GE(op.effAddr, base0);
            ASSERT_LT(op.effAddr, base0 + params.regions[0].sizeBytes);
        } else if (op.isStore()) {
            ASSERT_GE(op.effAddr, split);
        }
    }
}

TEST(Synthetic, StridedRegionUsesConfiguredStride)
{
    SyntheticTraceParams params = baseParams();
    params.loadFrac = 1.0;
    params.storeFrac = 0.0;
    params.branchFrac = 0.0;
    params.numOps = 100;
    params.regions = {
        {AccessPattern::Strided, 1024 * 1024, 256, 1.0, 0.0},
    };
    SyntheticTraceGenerator gen(params);
    isa::MicroOp op;
    std::uint64_t prev = 0;
    bool first = true;
    while (gen.next(op)) {
        if (!first) {
            EXPECT_EQ(op.effAddr - prev, 256u);
        }
        prev = op.effAddr;
        first = false;
    }
}

TEST(Synthetic, VirtualReserveCoversRegionsCodeAndSlack)
{
    SyntheticTraceParams params = baseParams();
    params.extraVirtualBytes = 1024 * 1024;
    SyntheticTraceGenerator gen(params);
    std::uint64_t floor = params.extraVirtualBytes
        + params.codeFootprintBytes;
    for (const auto &region : params.regions)
        floor += region.sizeBytes;
    EXPECT_GE(gen.virtualReserveBytes(), floor);
}

TEST(Synthetic, TakenBranchRedirectsInstructionStream)
{
    SyntheticTraceParams params = baseParams();
    params.branchFrac = 0.5;
    SyntheticTraceGenerator gen(params);
    isa::MicroOp op;
    bool pending_target = false;
    std::uint64_t target = 0;
    int checked = 0;
    while (gen.next(op) && checked < 200) {
        if (pending_target) {
            // Next fetch continues right after the branch target.
            EXPECT_EQ(op.pc == target + 4 || op.isConditionalBranch(),
                      true);
            pending_target = false;
            ++checked;
        }
        if (op.isBranch() && op.taken
            && op.branch != isa::BranchKind::Conditional) {
            pending_target = true;
            target = op.target;
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(SyntheticDeathTest, ValidationCatchesBadParams)
{
    SyntheticTraceParams params = baseParams();
    params.loadFrac = 0.9;
    params.storeFrac = 0.3;
    EXPECT_DEATH(SyntheticTraceGenerator{params}, "exceeds 100%");

    params = baseParams();
    params.regions.clear();
    EXPECT_DEATH(SyntheticTraceGenerator{params}, "at least one region");

    params = baseParams();
    params.hardBranchFrac = 1.5;
    EXPECT_DEATH(SyntheticTraceGenerator{params}, "hardBranchFrac");

    params = baseParams();
    params.regions[0].loadWeight = -1.0;
    EXPECT_DEATH(SyntheticTraceGenerator{params}, "non-negative");
}

TEST(Synthetic, AccessPatternNames)
{
    EXPECT_STREQ(accessPatternName(AccessPattern::Sequential),
                 "sequential");
    EXPECT_STREQ(accessPatternName(AccessPattern::PointerChase),
                 "pointer_chase");
}

} // namespace
} // namespace trace
} // namespace spec17
