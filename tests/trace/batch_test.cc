/**
 * @file
 * Batched trace delivery: TraceSource::nextBatch() must describe the
 * same stream as next() -- op for op, at any batch size, across phase
 * boundaries, through the default fallback, and mixed freely with
 * per-op pulls -- and reset() after a partially consumed batch must
 * replay the identical stream from the top (the contract retry-with-
 * seed-perturbation and record/replay depend on).
 */

#include "trace/source.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "trace/file.hh"
#include "trace/kernels.hh"
#include "trace/phased.hh"
#include "trace/synthetic.hh"

namespace spec17 {
namespace trace {
namespace {

SyntheticTraceParams
params(std::uint64_t num_ops = 20000)
{
    SyntheticTraceParams p;
    p.numOps = num_ops;
    p.seed = 99;
    p.loadFrac = 0.25;
    p.storeFrac = 0.10;
    p.branchFrac = 0.15;
    p.regions = {
        {AccessPattern::Sequential, 256 * 1024, 64, 1.0, 1.0},
        {AccessPattern::PointerChase, 2 * 1024 * 1024, 64, 1.0, 0.5},
    };
    return p;
}

std::vector<isa::MicroOp>
drainPerOp(TraceSource &source)
{
    std::vector<isa::MicroOp> ops;
    isa::MicroOp op;
    while (source.next(op))
        ops.push_back(op);
    return ops;
}

std::vector<isa::MicroOp>
drainBatched(TraceSource &source, std::size_t batch)
{
    std::vector<isa::MicroOp> ops;
    std::vector<isa::MicroOp> buf(batch);
    while (true) {
        const std::size_t got = source.nextBatch(buf.data(), batch);
        ops.insert(ops.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(got));
        if (got < batch)
            return ops;
    }
}

void
expectSameStream(const std::vector<isa::MicroOp> &a,
                 const std::vector<isa::MicroOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cls, b[i].cls) << "op " << i;
        EXPECT_EQ(a[i].branch, b[i].branch) << "op " << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << "op " << i;
        EXPECT_EQ(a[i].effAddr, b[i].effAddr) << "op " << i;
        EXPECT_EQ(a[i].size, b[i].size) << "op " << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << "op " << i;
        EXPECT_EQ(a[i].target, b[i].target) << "op " << i;
        EXPECT_EQ(a[i].depOnLoad, b[i].depOnLoad) << "op " << i;
        EXPECT_EQ(a[i].depOnPrev, b[i].depOnPrev) << "op " << i;
    }
}

TEST(TraceBatch, SyntheticBatchMatchesPerOpAtAnyBatchSize)
{
    SyntheticTraceGenerator per_op(params());
    const auto golden = drainPerOp(per_op);
    ASSERT_EQ(golden.size(), 20000u);

    // 7 and 999 leave a short final batch; 1 is the degenerate case.
    for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{999}}) {
        SyntheticTraceGenerator gen(params());
        expectSameStream(drainBatched(gen, batch), golden);
    }
}

TEST(TraceBatch, PhasedBatchMatchesPerOpAcrossPhaseBoundaries)
{
    const auto make = [] {
        std::vector<std::shared_ptr<TraceSource>> phases;
        phases.push_back(
            std::make_shared<StreamKernel>(64 * 1024, 500, true));
        phases.push_back(
            std::make_shared<SyntheticTraceGenerator>(params(3001)));
        phases.push_back(
            std::make_shared<PointerChaseKernel>(512 * 1024, 700, 16));
        return PhasedTrace(std::move(phases));
    };

    PhasedTrace per_op = make();
    const auto golden = drainPerOp(per_op);

    for (const std::size_t batch :
         {std::size_t{1}, std::size_t{7}, std::size_t{64},
          std::size_t{4096}}) {
        PhasedTrace phased = make();
        expectSameStream(drainBatched(phased, batch), golden);
    }
}

TEST(TraceBatch, DefaultFallbackMatchesPerOp)
{
    // Kernels don't override nextBatch; the base-class loop must
    // deliver the same stream.
    MatrixWalkKernel per_op(64, 96, /*row_major=*/false, 3);
    const auto golden = drainPerOp(per_op);

    MatrixWalkKernel batched(64, 96, /*row_major=*/false, 3);
    expectSameStream(drainBatched(batched, 13), golden);
}

TEST(TraceBatch, FileTraceBatchMatchesPerOp)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/spec17_batch_trace.s17t";
    SyntheticTraceGenerator gen(params(9000));
    ASSERT_EQ(writeTrace(path, gen), 9000u);

    FileTrace per_op(path);
    const auto golden = drainPerOp(per_op);
    ASSERT_EQ(golden.size(), 9000u);

    // 4096 matches the decode-buffer size; 1000 straddles refills.
    for (const std::size_t batch : {std::size_t{1}, std::size_t{1000},
                                    std::size_t{4096}}) {
        FileTrace file(path);
        expectSameStream(drainBatched(file, batch), golden);
    }
    std::remove(path.c_str());
}

TEST(TraceBatch, MixedPerOpAndBatchPullsAreOneStream)
{
    SyntheticTraceGenerator per_op(params());
    const auto golden = drainPerOp(per_op);

    SyntheticTraceGenerator mixed(params());
    std::vector<isa::MicroOp> ops;
    isa::MicroOp op;
    std::vector<isa::MicroOp> buf(64);
    while (true) {
        if (ops.size() % 3 == 0) {
            if (!mixed.next(op))
                break;
            ops.push_back(op);
        } else {
            const std::size_t got = mixed.nextBatch(buf.data(), 17);
            ops.insert(ops.end(), buf.begin(),
                       buf.begin() + static_cast<std::ptrdiff_t>(got));
            if (got < 17)
                break;
        }
    }
    expectSameStream(ops, golden);
}

TEST(TraceBatch, ResetAfterPartialBatchReplaysIdenticalStream)
{
    // The documented reset() contract: no matter how far or in what
    // chunk sizes the stream was consumed, reset() replays it
    // identically from the first op.
    const std::string path =
        std::string(::testing::TempDir()) + "/spec17_batch_reset.s17t";
    {
        SyntheticTraceGenerator gen(params(5000));
        ASSERT_EQ(writeTrace(path, gen), 5000u);
    }

    const auto check = [](TraceSource &source) {
        const auto golden = drainPerOp(source);
        source.reset();

        // Consume a partial batch (an odd count, mid-stream), then
        // rewind and replay in full.
        std::vector<isa::MicroOp> buf(37);
        ASSERT_EQ(source.nextBatch(buf.data(), 37), 37u);
        source.reset();
        expectSameStream(drainBatched(source, 64), golden);
    };

    SyntheticTraceGenerator synthetic(params(5000));
    check(synthetic);

    std::vector<std::shared_ptr<TraceSource>> phases;
    phases.push_back(
        std::make_shared<StreamKernel>(32 * 1024, 200, false));
    phases.push_back(
        std::make_shared<SyntheticTraceGenerator>(params(2000)));
    PhasedTrace phased(std::move(phases));
    check(phased);

    FileTrace file(path);
    check(file);

    PointerChaseKernel kernel(256 * 1024, 900, 8);
    check(kernel);

    std::remove(path.c_str());
}

/** Drains through nextBatchSoA, gathering lanes back to AoS ops. */
std::vector<isa::MicroOp>
drainSoA(TraceSource &source, std::size_t batch)
{
    std::vector<isa::MicroOp> ops;
    MicroOpBatch lanes;
    while (true) {
        const std::size_t got = source.nextBatchSoA(lanes, 0, batch);
        for (std::size_t i = 0; i < got; ++i)
            ops.push_back(lanes.get(i));
        if (got < batch)
            return ops;
    }
}

TEST(TraceBatch, SoaLanesDescribeTheSameStream)
{
    // Every SoA writer (synthetic native, phased stitching, file
    // unpack, and the base-class AoS-scratch adapter) must fill every
    // lane with exactly the fields a next() pull would deliver.
    {
        SyntheticTraceGenerator per_op(params());
        const auto golden = drainPerOp(per_op);
        for (const std::size_t batch :
             {std::size_t{1}, std::size_t{7}, std::size_t{64},
              std::size_t{999}}) {
            SyntheticTraceGenerator gen(params());
            expectSameStream(drainSoA(gen, batch), golden);
        }
    }
    {
        std::vector<std::shared_ptr<TraceSource>> phases;
        phases.push_back(
            std::make_shared<StreamKernel>(64 * 1024, 500, true));
        phases.push_back(
            std::make_shared<SyntheticTraceGenerator>(params(3001)));
        PhasedTrace per_op(std::move(phases));
        const auto golden = drainPerOp(per_op);

        std::vector<std::shared_ptr<TraceSource>> phases2;
        phases2.push_back(
            std::make_shared<StreamKernel>(64 * 1024, 500, true));
        phases2.push_back(
            std::make_shared<SyntheticTraceGenerator>(params(3001)));
        PhasedTrace phased(std::move(phases2));
        expectSameStream(drainSoA(phased, 64), golden);
    }
    {
        const std::string path = std::string(::testing::TempDir())
            + "/spec17_batch_soa_trace.s17t";
        SyntheticTraceGenerator gen(params(9000));
        ASSERT_EQ(writeTrace(path, gen), 9000u);
        FileTrace per_op(path);
        const auto golden = drainPerOp(per_op);
        for (const std::size_t batch :
             {std::size_t{1}, std::size_t{1000}, std::size_t{4096}}) {
            FileTrace file(path);
            expectSameStream(drainSoA(file, batch), golden);
        }
        std::remove(path.c_str());
    }
    {
        // Kernels don't override nextBatchSoA: the default adapter
        // (AoS scratch + scatter) must match too.
        MatrixWalkKernel per_op(64, 96, /*row_major=*/false, 3);
        const auto golden = drainPerOp(per_op);
        MatrixWalkKernel adapted(64, 96, /*row_major=*/false, 3);
        expectSameStream(drainSoA(adapted, 13), golden);
    }
}

TEST(TraceBatch, SoaPullsAtAnOffsetStitchOneStream)
{
    // The `at` parameter lets a combinator place a child's ops deeper
    // in the lanes; a chunk assembled from two offset pulls must read
    // back as the contiguous stream.
    SyntheticTraceGenerator per_op(params(200));
    const auto golden = drainPerOp(per_op);

    SyntheticTraceGenerator gen(params(200));
    MicroOpBatch lanes;
    ASSERT_EQ(gen.nextBatchSoA(lanes, 0, 80), 80u);
    ASSERT_EQ(gen.nextBatchSoA(lanes, 80, 120), 120u);
    std::vector<isa::MicroOp> ops;
    for (std::size_t i = 0; i < 200; ++i)
        ops.push_back(lanes.get(i));
    expectSameStream(ops, golden);
}

TEST(TraceBatch, PhasedGoldenBatchSplitAcrossATransition)
{
    // Golden case for the phase-boundary remainder contract: a batch
    // sized to straddle the first phase's end must contain the tail
    // of phase 0 followed by the head of phase 1, exactly as a
    // next() loop would deliver them -- on both batch surfaces.
    const auto make = [] {
        SyntheticTraceParams second = params(100);
        second.seed = 1234;  // distinct stream on each side
        std::vector<std::shared_ptr<TraceSource>> phases;
        phases.push_back(
            std::make_shared<SyntheticTraceGenerator>(params(100)));
        phases.push_back(
            std::make_shared<SyntheticTraceGenerator>(second));
        return PhasedTrace(std::move(phases));
    };

    PhasedTrace per_op = make();
    const auto golden = drainPerOp(per_op);
    ASSERT_EQ(golden.size(), 200u);

    // One 64-op batch to 64, then a 64-op batch covering ops 64..127
    // -- the second one crosses the boundary at op 100.
    PhasedTrace aos = make();
    std::vector<isa::MicroOp> buf(64);
    ASSERT_EQ(aos.nextBatch(buf.data(), 64), 64u);
    ASSERT_EQ(aos.currentPhase(), 0u);
    std::vector<isa::MicroOp> straddle(64);
    ASSERT_EQ(aos.nextBatch(straddle.data(), 64), 64u);
    EXPECT_EQ(aos.currentPhase(), 1u);
    for (std::size_t i = 0; i < 64; ++i) {
        EXPECT_EQ(straddle[i].pc, golden[64 + i].pc) << "op " << i;
        EXPECT_EQ(straddle[i].cls, golden[64 + i].cls) << "op " << i;
    }

    PhasedTrace soa = make();
    MicroOpBatch lanes;
    ASSERT_EQ(soa.nextBatchSoA(lanes, 0, 64), 64u);
    ASSERT_EQ(soa.nextBatchSoA(lanes, 64, 64), 64u);
    for (std::size_t i = 0; i < 128; ++i) {
        const isa::MicroOp op = lanes.get(i);
        EXPECT_EQ(op.pc, golden[i].pc) << "op " << i;
        EXPECT_EQ(op.effAddr, golden[i].effAddr) << "op " << i;
    }
}

TEST(TraceBatch, CancellationStopsABatchAtTheFlag)
{
    bool cancelled = false;
    SyntheticTraceGenerator gen(params());
    gen.setCancelFlag(&cancelled);

    std::vector<isa::MicroOp> buf(64);
    ASSERT_EQ(gen.nextBatch(buf.data(), 64), 64u);
    cancelled = true;
    EXPECT_EQ(gen.nextBatch(buf.data(), 64), 0u);
    EXPECT_EQ(gen.emittedOps(), 64u);

    // Clearing the flag resumes exactly where the stream stopped,
    // like next() does.
    cancelled = false;
    EXPECT_EQ(gen.nextBatch(buf.data(), 64), 64u);
    EXPECT_EQ(gen.emittedOps(), 128u);
}

TEST(TraceBatch, PhasedDoesNotDropACancelledPhaseRemainder)
{
    // Regression: a child returning short because its cancel flag is
    // raised is paused, not exhausted. PhasedTrace used to advance
    // past it anyway, silently dropping the phase's remaining ops and
    // splicing the next phase's head into the stream. cancelled()
    // distinguishes the two cases on every surface.
    const auto make = [](const bool *flag) {
        auto first =
            std::make_shared<SyntheticTraceGenerator>(params(100));
        first->setCancelFlag(flag);
        SyntheticTraceParams second = params(100);
        second.seed = 4321;
        std::vector<std::shared_ptr<TraceSource>> phases;
        phases.push_back(first);
        phases.push_back(
            std::make_shared<SyntheticTraceGenerator>(second));
        return PhasedTrace(std::move(phases));
    };

    PhasedTrace golden_trace = make(nullptr);
    const auto golden = drainPerOp(golden_trace);
    ASSERT_EQ(golden.size(), 200u);

    // Cancel mid-phase-0, observe the pause, resume, and check the
    // full stream is intact on each surface.
    const auto check = [&](auto &&pull) {
        bool cancelled = false;
        PhasedTrace phased = make(&cancelled);
        std::vector<isa::MicroOp> ops = pull(phased, 64);
        ASSERT_EQ(ops.size(), 64u);

        cancelled = true;
        EXPECT_TRUE(phased.cancelled());
        EXPECT_TRUE(pull(phased, 64).empty());
        // The cursor must still be on the paused phase 0.
        EXPECT_EQ(phased.currentPhase(), 0u);

        cancelled = false;
        while (true) {
            const auto got = pull(phased, 64);
            ops.insert(ops.end(), got.begin(), got.end());
            if (got.size() < 64)
                break;
        }
        expectSameStream(ops, golden);
    };

    check([](PhasedTrace &source, std::size_t n) {
        std::vector<isa::MicroOp> buf(n);
        buf.resize(source.nextBatch(buf.data(), n));
        return buf;
    });
    check([](PhasedTrace &source, std::size_t n) {
        MicroOpBatch lanes;
        const std::size_t got = source.nextBatchSoA(lanes, 0, n);
        std::vector<isa::MicroOp> ops;
        for (std::size_t i = 0; i < got; ++i)
            ops.push_back(lanes.get(i));
        return ops;
    });
    check([](PhasedTrace &source, std::size_t n) {
        std::vector<isa::MicroOp> ops;
        isa::MicroOp op;
        while (ops.size() < n && source.next(op))
            ops.push_back(op);
        return ops;
    });
}

} // namespace
} // namespace trace
} // namespace spec17
