#include "trace/kernels.hh"

#include <gtest/gtest.h>

#include <set>

namespace spec17 {
namespace trace {
namespace {

std::vector<isa::MicroOp>
drain(TraceSource &source)
{
    std::vector<isa::MicroOp> ops;
    isa::MicroOp op;
    while (source.next(op))
        ops.push_back(op);
    return ops;
}

TEST(StreamKernel, EmitsExpectedOpSequence)
{
    StreamKernel kernel(1024, 3, /*with_store=*/true);
    const auto ops = drain(kernel);
    ASSERT_EQ(ops.size(), 3u * kernel.opsPerIteration());
    EXPECT_TRUE(ops[0].isLoad());
    EXPECT_TRUE(ops[1].isStore());
    EXPECT_EQ(ops[2].cls, isa::UopClass::IntAlu);
    EXPECT_TRUE(ops[3].isBranch());
    // Loop branch taken except on the last iteration.
    EXPECT_TRUE(ops[3].taken);
    EXPECT_FALSE(ops.back().taken);
}

TEST(StreamKernel, SequentialAddressesWrap)
{
    StreamKernel kernel(64, 16, false); // 8 elements, 2 passes
    const auto ops = drain(kernel);
    std::uint64_t last = 0;
    int loads = 0;
    for (const auto &op : ops) {
        if (!op.isLoad())
            continue;
        if (loads > 0 && loads % 8 != 0)
            EXPECT_EQ(op.effAddr, last + 8);
        last = op.effAddr;
        ++loads;
    }
    EXPECT_EQ(loads, 16);
}

TEST(StreamKernel, ResetReproducesStream)
{
    StreamKernel kernel(4096, 100, true);
    const auto first = drain(kernel);
    kernel.reset();
    const auto second = drain(kernel);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].effAddr, second[i].effAddr);
}

TEST(PointerChase, EveryLoadAfterFirstIsDependent)
{
    PointerChaseKernel kernel(64 * 64, 50);
    const auto ops = drain(kernel);
    int loads = 0;
    for (const auto &op : ops) {
        if (!op.isLoad())
            continue;
        if (loads == 0)
            EXPECT_FALSE(op.depOnLoad);
        else
            EXPECT_TRUE(op.depOnLoad);
        ++loads;
    }
    EXPECT_EQ(loads, 50);
}

TEST(PointerChase, VisitsAllNodesBeforeRepeating)
{
    const std::uint64_t nodes = 32;
    PointerChaseKernel kernel(nodes * 64, nodes);
    const auto ops = drain(kernel);
    std::set<std::uint64_t> seen;
    for (const auto &op : ops) {
        if (op.isLoad())
            seen.insert(op.effAddr);
    }
    // Sattolo cycle: all nodes visited exactly once per lap.
    EXPECT_EQ(seen.size(), nodes);
}

TEST(PointerChase, DeterministicPermutationPerSeed)
{
    PointerChaseKernel a(4096, 30, 9);
    PointerChaseKernel b(4096, 30, 9);
    PointerChaseKernel c(4096, 30, 10);
    const auto oa = drain(a);
    const auto ob = drain(b);
    const auto oc = drain(c);
    bool all_same_ab = true, all_same_ac = true;
    for (std::size_t i = 0; i < oa.size(); ++i) {
        all_same_ab &= oa[i].effAddr == ob[i].effAddr;
        all_same_ac &= oa[i].effAddr == oc[i].effAddr;
    }
    EXPECT_TRUE(all_same_ab);
    EXPECT_FALSE(all_same_ac);
}

TEST(MatrixWalk, RowMajorIsSequential)
{
    MatrixWalkKernel kernel(4, 8, /*row_major=*/true);
    const auto ops = drain(kernel);
    std::uint64_t expect = 0;
    for (const auto &op : ops) {
        if (!op.isLoad())
            continue;
        EXPECT_EQ(op.effAddr % (4 * 8 * 8), expect % (4 * 8 * 8));
        expect += 8;
    }
}

TEST(MatrixWalk, ColumnMajorStridesByRow)
{
    MatrixWalkKernel kernel(4, 8, /*row_major=*/false);
    const auto ops = drain(kernel);
    std::vector<std::uint64_t> loads;
    for (const auto &op : ops) {
        if (op.isLoad())
            loads.push_back(op.effAddr);
    }
    ASSERT_GE(loads.size(), 3u);
    // Walking down a column of a row-major matrix strides by the row
    // size (8 cols x 8 bytes).
    EXPECT_EQ(loads[1] - loads[0], 8u * 8u);
    EXPECT_EQ(loads[2] - loads[1], 8u * 8u);
}

TEST(MatrixWalk, PassesRepeatTheWholeMatrix)
{
    MatrixWalkKernel kernel(2, 2, true, 3);
    const auto ops = drain(kernel);
    int loads = 0;
    for (const auto &op : ops)
        loads += op.isLoad();
    EXPECT_EQ(loads, 2 * 2 * 3);
}

TEST(VectorTrace, ReplaysAndResets)
{
    std::vector<isa::MicroOp> ops = {
        isa::makeAlu(0x1000),
        isa::makeLoad(0x1004, 0x2000),
    };
    VectorTrace source(ops);
    isa::MicroOp op;
    ASSERT_TRUE(source.next(op));
    EXPECT_EQ(op.pc, 0x1000u);
    ASSERT_TRUE(source.next(op));
    EXPECT_TRUE(op.isLoad());
    EXPECT_FALSE(source.next(op));
    source.reset();
    ASSERT_TRUE(source.next(op));
    EXPECT_EQ(op.pc, 0x1000u);
}

TEST(KernelsDeathTest, RejectDegenerateShapes)
{
    EXPECT_DEATH(StreamKernel(4, 10), "too small");
    EXPECT_DEATH(PointerChaseKernel(64, 10), ">= 2 nodes");
    EXPECT_DEATH(MatrixWalkKernel(0, 4, true), "non-empty");
}

} // namespace
} // namespace trace
} // namespace spec17
