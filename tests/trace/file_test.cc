#include "trace/file.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "trace/kernels.hh"
#include "trace/synthetic.hh"

#include "sim/simulator.hh"

namespace spec17 {
namespace trace {
namespace {

std::string
tempTrace(const char *tag)
{
    return std::string(::testing::TempDir()) + "/spec17_trace_" + tag
        + ".s17t";
}

TEST(TraceFile, RoundTripsEveryField)
{
    SyntheticTraceParams params;
    params.numOps = 5000;
    params.regions = {
        {AccessPattern::Random, 1 << 20, 64, 1.0, 1.0},
        {AccessPattern::PointerChase, 1 << 20, 64, 0.3, 0.0},
    };
    SyntheticTraceGenerator original(params);

    const std::string path = tempTrace("roundtrip");
    EXPECT_EQ(writeTrace(path, original), 5000u);

    original.reset();
    FileTrace replay(path);
    EXPECT_EQ(replay.size(), 5000u);
    EXPECT_EQ(replay.virtualReserveBytes(),
              original.virtualReserveBytes());

    isa::MicroOp a, b;
    std::uint64_t compared = 0;
    while (original.next(a)) {
        ASSERT_TRUE(replay.next(b)) << "record " << compared;
        ASSERT_EQ(a.cls, b.cls);
        ASSERT_EQ(a.branch, b.branch);
        ASSERT_EQ(a.pc, b.pc);
        ASSERT_EQ(a.effAddr, b.effAddr);
        ASSERT_EQ(a.size, b.size);
        ASSERT_EQ(a.taken, b.taken);
        ASSERT_EQ(a.target, b.target);
        ASSERT_EQ(a.depOnLoad, b.depOnLoad);
        ASSERT_EQ(a.depOnPrev, b.depOnPrev);
        ++compared;
    }
    EXPECT_FALSE(replay.next(b));
    EXPECT_EQ(compared, 5000u);
    std::remove(path.c_str());
}

TEST(TraceFile, ResetReplaysFromStart)
{
    StreamKernel kernel(4096, 100, true);
    const std::string path = tempTrace("reset");
    writeTrace(path, kernel);
    FileTrace replay(path);
    isa::MicroOp op;
    ASSERT_TRUE(replay.next(op));
    const auto first_pc = op.pc;
    while (replay.next(op)) {
    }
    replay.reset();
    ASSERT_TRUE(replay.next(op));
    EXPECT_EQ(op.pc, first_pc);
    std::remove(path.c_str());
}

TEST(TraceFile, SpansMultipleReadBuffers)
{
    // More than one 4096-record buffer.
    StreamKernel kernel(1 << 20, 5000, true); // 20000 ops
    const std::string path = tempTrace("buffers");
    EXPECT_EQ(writeTrace(path, kernel), 20000u);
    FileTrace replay(path);
    isa::MicroOp op;
    std::uint64_t count = 0;
    while (replay.next(op))
        ++count;
    EXPECT_EQ(count, 20000u);
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, RejectsMissingAndCorruptFiles)
{
    EXPECT_EXIT(FileTrace("/nonexistent/path.s17t"),
                ::testing::ExitedWithCode(1), "cannot open");

    const std::string path = tempTrace("corrupt");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace";
    }
    EXPECT_EXIT(FileTrace{path}, ::testing::ExitedWithCode(1),
                "not a spec17 trace");
    std::remove(path.c_str());
}

TEST(TraceFileDeathTest, TruncationIsDetected)
{
    StreamKernel kernel(4096, 100);
    const std::string path = tempTrace("truncated");
    writeTrace(path, kernel);
    // Chop the last record in half.
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        const auto full = in.tellg();
        std::ifstream src(path, std::ios::binary);
        std::vector<char> bytes(static_cast<std::size_t>(full) - 10);
        src.read(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    FileTrace replay(path);
    isa::MicroOp op;
    EXPECT_DEATH(
        {
            while (replay.next(op)) {
            }
        },
        "truncated");
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayedTraceDrivesTheSimulatorIdentically)
{
    SyntheticTraceParams params;
    params.numOps = 20000;
    params.regions = {
        {AccessPattern::Random, 4 << 20, 64, 1.0, 1.0},
    };
    SyntheticTraceGenerator live(params);
    const std::string path = tempTrace("simdrive");
    writeTrace(path, live);
    live.reset();
    FileTrace replay(path);

    sim::CpuSimulator sim_live(sim::SystemConfig::haswellXeonE52650Lv3());
    sim::CpuSimulator sim_replay(
        sim::SystemConfig::haswellXeonE52650Lv3());
    const auto live_result = sim_live.run(live);
    const auto replay_result = sim_replay.run(replay);
    EXPECT_DOUBLE_EQ(live_result.cycles, replay_result.cycles);
    EXPECT_EQ(live_result.counters.get(
                  counters::PerfEvent::MemLoadUopsRetiredL1Miss),
              replay_result.counters.get(
                  counters::PerfEvent::MemLoadUopsRetiredL1Miss));
}

} // namespace
} // namespace trace
} // namespace spec17
