#include "trace/phased.hh"

#include <gtest/gtest.h>

#include "trace/kernels.hh"

namespace spec17 {
namespace trace {
namespace {

PhasedTrace
threePhases()
{
    std::vector<std::shared_ptr<TraceSource>> phases;
    phases.push_back(std::make_shared<StreamKernel>(1024, 10));
    phases.push_back(std::make_shared<PointerChaseKernel>(4096, 20));
    phases.push_back(std::make_shared<StreamKernel>(2048, 5, true));
    return PhasedTrace(std::move(phases));
}

TEST(PhasedTrace, PlaysChildrenInOrder)
{
    PhasedTrace trace = threePhases();
    EXPECT_EQ(trace.numPhases(), 3u);
    isa::MicroOp op;
    std::uint64_t count = 0;
    std::size_t last_phase = 0;
    while (trace.next(op)) {
        ++count;
        // Phase index is monotone.
        EXPECT_GE(trace.currentPhase(), last_phase);
        last_phase = trace.currentPhase();
    }
    // stream(10 iters x3) + chase(20 hops x2) + stream-store(5 x4).
    EXPECT_EQ(count, 10u * 3 + 20u * 2 + 5u * 4);
    EXPECT_EQ(trace.currentPhase(), 3u);
}

TEST(PhasedTrace, ResetRewindsEveryChild)
{
    PhasedTrace trace = threePhases();
    isa::MicroOp op;
    std::vector<std::uint64_t> first;
    while (trace.next(op))
        first.push_back(op.effAddr);
    trace.reset();
    EXPECT_EQ(trace.currentPhase(), 0u);
    std::vector<std::uint64_t> second;
    while (trace.next(op))
        second.push_back(op.effAddr);
    EXPECT_EQ(first, second);
}

TEST(PhasedTrace, ReserveIsMaxOfChildren)
{
    PhasedTrace trace = threePhases();
    // Children reserve 1024, 4096 and 2*2048.
    EXPECT_EQ(trace.virtualReserveBytes(), 4096u);
}

TEST(PhasedTraceDeathTest, RejectsEmptyAndNull)
{
    EXPECT_DEATH(PhasedTrace({}), ">= 1 phase");
    std::vector<std::shared_ptr<TraceSource>> with_null = {nullptr};
    EXPECT_DEATH(PhasedTrace(std::move(with_null)), "null phase");
}

} // namespace
} // namespace trace
} // namespace spec17
