#include "util/logging.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace {

TEST(Logging, ConcatArgsFormatsMixedTypes)
{
    EXPECT_EQ(detail::concatArgs("x=", 42, " y=", 1.5), "x=42 y=1.5");
    EXPECT_EQ(detail::concatArgs(), "");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH({ SPEC17_PANIC("boom ", 7); }, "panic: boom 7");
}

TEST(LoggingDeathTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT({ SPEC17_FATAL("bad config"); },
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(LoggingDeathTest, AssertFiresOnlyWhenFalse)
{
    SPEC17_ASSERT(1 + 1 == 2, "never fires");
    EXPECT_DEATH({ SPEC17_ASSERT(false, "ctx ", 3); },
                 "assertion 'false' failed: ctx 3");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("warning ", 1);
    inform("status ", 2);
    SUCCEED();
}

TEST(Logging, FormatEventLeavesPlainValuesUnquoted)
{
    EXPECT_EQ(formatEvent("retry", {{"pair", "505.mcf_r"},
                                    {"attempt", "2"}}),
              "event: retry pair=505.mcf_r attempt=2");
}

TEST(Logging, FormatEventQuotesValuesThatWouldBreakFraming)
{
    // Whitespace, '=', quotes, backslashes and control characters in
    // a value must not be able to forge extra key=value fields.
    EXPECT_EQ(formatEvent("e", {{"msg", "two words"}}),
              "event: e msg=\"two words\"");
    EXPECT_EQ(formatEvent("e", {{"msg", "a=b"}}),
              "event: e msg=\"a=b\"");
    EXPECT_EQ(formatEvent("e", {{"msg", "say \"hi\""}}),
              "event: e msg=\"say \\\"hi\\\"\"");
    EXPECT_EQ(formatEvent("e", {{"msg", "line1\nline2"}}),
              "event: e msg=\"line1\\nline2\"");
    EXPECT_EQ(formatEvent("e", {{"msg", "tab\there\rback\\slash"}}),
              "event: e msg=\"tab\\there\\rback\\\\slash\"");
}

TEST(Logging, FormatEventQuotesEmptyValues)
{
    EXPECT_EQ(formatEvent("e", {{"msg", ""}}), "event: e msg=\"\"");
}

TEST(Logging, FormatEventInjectionCannotForgeAField)
{
    // A hostile value trying to smuggle `ok=1` stays one quoted value.
    EXPECT_EQ(formatEvent("e", {{"msg", "x ok=1"}, {"real", "2"}}),
              "event: e msg=\"x ok=1\" real=2");
}

TEST(Logging, LogEventOverloadsAgree)
{
    // Both the vector and the brace-literal overload format through
    // formatEvent; this just pins that neither terminates.
    logEvent("smoke", {{"k", "v"}});
    logEvent("smoke", std::vector<LogField>{{"k", "v v"}});
    SUCCEED();
}

} // namespace
} // namespace spec17
