#include "util/logging.hh"

#include <gtest/gtest.h>

namespace spec17 {
namespace {

TEST(Logging, ConcatArgsFormatsMixedTypes)
{
    EXPECT_EQ(detail::concatArgs("x=", 42, " y=", 1.5), "x=42 y=1.5");
    EXPECT_EQ(detail::concatArgs(), "");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH({ SPEC17_PANIC("boom ", 7); }, "panic: boom 7");
}

TEST(LoggingDeathTest, FatalExitsWithCodeOne)
{
    EXPECT_EXIT({ SPEC17_FATAL("bad config"); },
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(LoggingDeathTest, AssertFiresOnlyWhenFalse)
{
    SPEC17_ASSERT(1 + 1 == 2, "never fires");
    EXPECT_DEATH({ SPEC17_ASSERT(false, "ctx ", 3); },
                 "assertion 'false' failed: ctx 3");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("warning ", 1);
    inform("status ", 2);
    SUCCEED();
}

} // namespace
} // namespace spec17
