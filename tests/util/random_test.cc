#include "util/random.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace spec17 {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInBoundAndCoversRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t x = rng.nextBounded(7);
        ASSERT_LT(x, 7u);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BoundedIsApproximatelyUniform)
{
    Rng rng(17);
    std::vector<int> hist(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++hist[rng.nextBounded(10)];
    for (int count : hist)
        EXPECT_NEAR(count, n / 10, n / 10 * 0.1);
}

TEST(Rng, RangeInclusiveEndpointsReachable)
{
    Rng rng(21);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t x = rng.nextRange(-3, 3);
        ASSERT_GE(x, -3);
        ASSERT_LE(x, 3);
        saw_lo |= (x == -3);
        saw_hi |= (x == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCasesAndRate)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(rng.nextBernoulli(0.0));
        ASSERT_TRUE(rng.nextBernoulli(1.0));
    }
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBernoulli(0.3);
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, GaussianMomentsMatchStandardNormal)
{
    Rng rng(11);
    double sum = 0.0, sumsq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.nextGaussian();
        sum += x;
        sumsq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Rng, DiscreteRespectsWeights)
{
    Rng rng(13);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> hist(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++hist[rng.nextDiscrete(weights)];
    EXPECT_EQ(hist[1], 0);
    EXPECT_NEAR(hist[0] / static_cast<double>(n), 0.25, 0.02);
    EXPECT_NEAR(hist[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(BoundedDraw, MatchesNextBoundedValueAndState)
{
    // The cached form must be draw-for-draw identical to
    // nextBounded(): same value AND same Rng-state advance, across
    // power-of-two bounds, the fastmod path, and the >= 2^63
    // hardware-modulo fallback.
    const std::uint64_t bounds[] = {
        1,
        2,
        7,
        64,
        1000,
        4096,
        999983,
        (std::uint64_t{1} << 53) - 111,
        (std::uint64_t{1} << 62) + 12345,
        (std::uint64_t{1} << 63) + 9,
    };
    for (const std::uint64_t bound : bounds) {
        Rng direct(bound ^ 0xabcd);
        Rng cached(bound ^ 0xabcd);
        const BoundedDraw draw(bound);
        for (int i = 0; i < 2000; ++i)
            ASSERT_EQ(direct.nextBounded(bound), draw.draw(cached))
                << "bound=" << bound << " i=" << i;
        EXPECT_EQ(direct.next(), cached.next()) << "bound=" << bound;
    }
}

TEST(BernoulliDraw, MatchesNextBernoulliValueAndState)
{
    const double probs[] = {-0.5,  0.0,   1e-18, 0.005, 0.25,
                            0.5,   0.945, 0.99995,
                            1.0 - 1e-16,  1.0,   1.5};
    for (const double p : probs) {
        Rng direct(42);
        Rng cached(42);
        const BernoulliDraw draw(p);
        for (int i = 0; i < 4000; ++i)
            ASSERT_EQ(direct.nextBernoulli(p), draw.draw(cached))
                << "p=" << p << " i=" << i;
        // Equal state afterward: the degenerate probabilities consumed
        // no draw on either side, the rest consumed one per call.
        EXPECT_EQ(direct.next(), cached.next()) << "p=" << p;
    }
}

TEST(BernoulliDraw, ThresholdPreservesEveryComparisonOutcome)
{
    // For probabilities straddling representability edges, check the
    // defining property directly on boundary 53-bit values.
    const double probs[] = {0.25, 0.3, 1.0 / 3.0, 0.945,
                            1e-18, 1.0 - 1e-16};
    for (const double p : probs) {
        const std::uint64_t t = BernoulliDraw::thresholdOf(p);
        ASSERT_GT(t, 0u);
        ASSERT_LE(t, std::uint64_t{1} << 53);
        const std::uint64_t probes[] = {0, t - 1, t,
                                        (std::uint64_t{1} << 53) - 1};
        for (const std::uint64_t x : probes) {
            if (x >= (std::uint64_t{1} << 53))
                continue;
            const bool via_double =
                static_cast<double>(x) * 0x1.0p-53 < p;
            EXPECT_EQ(via_double, x < t) << "p=" << p << " x=" << x;
        }
    }
    EXPECT_EQ(BernoulliDraw::thresholdOf(0.0), 0u);
    EXPECT_EQ(BernoulliDraw::thresholdOf(-2.0), 0u);
    EXPECT_EQ(BernoulliDraw::thresholdOf(1.0), std::uint64_t{1} << 53);
    EXPECT_EQ(BernoulliDraw::thresholdOf(7.0), std::uint64_t{1} << 53);
}

TEST(RngDeathTest, DiscreteRejectsDegenerateWeights)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextDiscrete({0.0, 0.0}), "weights sum to zero");
    EXPECT_DEATH(rng.nextDiscrete({1.0, -0.5}), "negative weight");
}

TEST(DeriveSeed, LabelsSeparateStreams)
{
    const std::uint64_t root = 42;
    EXPECT_NE(deriveSeed(root, "icache"), deriveSeed(root, "dcache"));
    EXPECT_EQ(deriveSeed(root, "icache"), deriveSeed(root, "icache"));
    EXPECT_NE(deriveSeed(root, "icache"), deriveSeed(43, "icache"));
}

TEST(DeriveSeed, NumericSaltsSeparateStreams)
{
    EXPECT_NE(deriveSeed(1, 0, 0), deriveSeed(1, 1, 0));
    EXPECT_NE(deriveSeed(1, 0, 0), deriveSeed(1, 0, 1));
    EXPECT_EQ(deriveSeed(9, 4, 2), deriveSeed(9, 4, 2));
}

TEST(SplitMix64, KnownReferenceValues)
{
    // Reference values from the canonical SplitMix64 with seed 0.
    std::uint64_t state = 0;
    EXPECT_EQ(splitMix64(state), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(splitMix64(state), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(splitMix64(state), 0x06c45d188009454fULL);
}

} // namespace
} // namespace spec17
