#include "util/table.hh"

#include <gtest/gtest.h>

#include <sstream>

namespace spec17 {
namespace {

TEST(TextTable, RendersAlignedColumnsWithHeaderRule)
{
    TextTable t({"name", "ipc"});
    t.addRow({"505.mcf_r", "0.886"});
    t.addRow({"525.x264_r", "3.024"});
    std::ostringstream os;
    t.render(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_NE(out.find("505.mcf_r"), std::string::npos);
    // Header rule is the second line.
    const auto first_nl = out.find('\n');
    EXPECT_EQ(out[first_nl + 1], '-');
}

TEST(TextTable, PadsShortRows)
{
    TextTable t({"a", "b", "c"});
    t.addRow({"only"});
    std::ostringstream os;
    t.render(os);
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TextTableDeathTest, RejectsOverlongRows)
{
    TextTable t({"a"});
    EXPECT_DEATH(t.addRow({"1", "2"}), "more cells than headers");
}

TEST(TextTable, CsvQuotesSpecialCells)
{
    TextTable t({"name", "note"});
    t.addRow({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.renderCsv(os);
    EXPECT_EQ(os.str(), "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n");
}

TEST(Format, FmtDoubleRespectsDigits)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(-0.5, 3), "-0.500");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(Format, FmtBytesPicksUnits)
{
    EXPECT_EQ(fmtBytes(512), "512.000 B");
    EXPECT_EQ(fmtBytes(2048), "2.000 KiB");
    EXPECT_EQ(fmtBytes(3.5 * 1024 * 1024), "3.500 MiB");
    EXPECT_EQ(fmtBytes(12.385 * 1024 * 1024 * 1024), "12.385 GiB");
}

TEST(Format, FmtCountInsertsSeparators)
{
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567890), "1,234,567,890");
}

} // namespace
} // namespace spec17
