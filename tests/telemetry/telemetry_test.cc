#include "telemetry/registry.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/simulator.hh"
#include "suite/runner.hh"
#include "telemetry/progress.hh"
#include "telemetry/sampler.hh"
#include "telemetry/sink.hh"
#include "workloads/builder.hh"

namespace spec17 {
namespace telemetry {
namespace {

using counters::PerfEvent;
using workloads::AppInputPair;
using workloads::InputSize;

// ---------------------------------------------------------------- registry

TEST(Registry, PreservesRegistrationOrderAndKinds)
{
    MetricsRegistry registry;
    double a = 1.0, b = 2.0;
    registry.registerCounter("x.count", "a counter", [&] { return a; });
    registry.registerGauge("x.level", "a gauge", [&] { return b; });

    ASSERT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.at(0).name, "x.count");
    EXPECT_EQ(registry.at(0).kind, MetricKind::Counter);
    EXPECT_EQ(registry.at(1).name, "x.level");
    EXPECT_EQ(registry.at(1).kind, MetricKind::Gauge);
    EXPECT_TRUE(registry.contains("x.level"));
    EXPECT_FALSE(registry.contains("x.nope"));
    EXPECT_EQ(registry.indexOf("x.level"), 1u);

    a = 7.0;
    const auto values = registry.readAll();
    ASSERT_EQ(values.size(), 2u);
    EXPECT_DOUBLE_EQ(values[0], 7.0);
    EXPECT_DOUBLE_EQ(values[1], 2.0);
}

TEST(Registry, KindNamesAreStable)
{
    EXPECT_STREQ(metricKindName(MetricKind::Counter), "counter");
    EXPECT_STREQ(metricKindName(MetricKind::Gauge), "gauge");
}

TEST(RegistryDeathTest, DuplicateNamePanics)
{
    MetricsRegistry registry;
    registry.registerCounter("dup", "", [] { return 0.0; });
    EXPECT_DEATH(registry.registerGauge("dup", "", [] { return 0.0; }),
                 "dup");
}

TEST(RegistryDeathTest, AbsentNamePanicsOnIndexOf)
{
    MetricsRegistry registry;
    EXPECT_DEATH(registry.indexOf("ghost"), "ghost");
}

TEST(Registry, SimulatorRegistrationCoversEveryComponent)
{
    const auto config = sim::SystemConfig::haswellXeonE52650Lv3();
    sim::CpuSimulator simulator(config, /*seed=*/1);
    MetricsRegistry registry;
    registerSimulatorMetrics(registry, simulator);
    for (const char *name :
         {"perf.inst_retired.any", "perf.cpu_clk_unhalted.ref_tsc",
          "core.retired", "core.cycles", "l1i.accesses", "l1d.misses",
          "l2.accesses", "l3.misses", "branch.executed",
          "branch.mispredicted", "dtlb.walks", "itlb.accesses",
          "footprint.pages", "perf.rss"})
        EXPECT_TRUE(registry.contains(name)) << name;
    // A prefix namespaces a second core without name collisions.
    registerSimulatorMetrics(registry, simulator, "core1.");
    EXPECT_TRUE(registry.contains("core1.core.cycles"));
}

// ----------------------------------------------------------------- sampler

/** Registry with one hand-driven counter and one gauge. */
struct ManualMetrics
{
    double count = 0.0;
    double level = 0.0;
    MetricsRegistry registry;

    ManualMetrics()
    {
        registry.registerCounter("ops", "", [this] { return count; });
        registry.registerGauge("rss", "", [this] { return level; });
    }
};

TEST(Sampler, EmitsDeltasForCountersAndLevelsForGauges)
{
    ManualMetrics m;
    m.count = 100.0; // pre-baseline history must not leak into row 0
    m.level = 5.0;
    IntervalSampler sampler(m.registry, 10);
    sampler.begin();

    EXPECT_EQ(sampler.opsUntilNextSample(0), 10u);
    m.count = 130.0;
    m.level = 7.0;
    sampler.onProgress(10);
    m.count = 135.0;
    m.level = 6.0;
    sampler.onProgress(20);
    sampler.finish(20);

    const TimeSeries &series = sampler.series();
    ASSERT_EQ(series.numIntervals(), 2u);
    EXPECT_EQ(series.intervalOps, 10u);
    EXPECT_EQ(series.endOps[0], 10u);
    EXPECT_EQ(series.endOps[1], 20u);
    EXPECT_DOUBLE_EQ(series.column("ops")[0], 30.0); // delta
    EXPECT_DOUBLE_EQ(series.column("ops")[1], 5.0);
    EXPECT_DOUBLE_EQ(series.column("rss")[0], 7.0);  // level
    EXPECT_DOUBLE_EQ(series.column("rss")[1], 6.0);
    EXPECT_DOUBLE_EQ(series.columnSum("ops"), 35.0);
}

TEST(Sampler, FinishFlushesPartialFinalInterval)
{
    ManualMetrics m;
    IntervalSampler sampler(m.registry, 10);
    sampler.begin();
    m.count = 4.0;
    sampler.onProgress(10);
    m.count = 6.0;
    sampler.onProgress(13); // mid-interval progress emits nothing
    EXPECT_EQ(sampler.series().numIntervals(), 1u);
    sampler.finish(13);
    ASSERT_EQ(sampler.series().numIntervals(), 2u);
    EXPECT_EQ(sampler.series().endOps[1], 13u);
    EXPECT_DOUBLE_EQ(sampler.series().column("ops")[1], 2.0);
}

TEST(Sampler, FinishOnBoundaryEmitsNoEmptyRow)
{
    ManualMetrics m;
    IntervalSampler sampler(m.registry, 10);
    sampler.begin();
    m.count = 1.0;
    sampler.onProgress(10);
    sampler.finish(10);
    EXPECT_EQ(sampler.series().numIntervals(), 1u);
}

TEST(Sampler, OpsUntilNextSampleCapsAtBoundary)
{
    ManualMetrics m;
    IntervalSampler sampler(m.registry, 10);
    sampler.begin();
    sampler.onProgress(7);
    EXPECT_EQ(sampler.opsUntilNextSample(7), 3u);
    sampler.onProgress(10);
    EXPECT_EQ(sampler.opsUntilNextSample(10), 10u);
}

TEST(SamplerDeathTest, OverrunningABoundaryPanics)
{
    ManualMetrics m;
    IntervalSampler sampler(m.registry, 10);
    sampler.begin();
    EXPECT_DEATH(sampler.onProgress(11), "boundary");
}

TEST(SamplerDeathTest, UnknownDerivedColumnPanicsAtBegin)
{
    ManualMetrics m;
    IntervalSampler sampler(m.registry, 10, {{"bad", "ops", "ghost"}});
    EXPECT_DEATH(sampler.begin(), "ghost");
}

TEST(Sampler, DerivedColumnsAreRatiosOfIntervalDeltas)
{
    MetricsRegistry registry;
    double num = 0.0, den = 0.0;
    registry.registerCounter("n", "", [&] { return num; });
    registry.registerCounter("d", "", [&] { return den; });
    IntervalSampler sampler(registry, 10, {{"ratio", "n", "d"}});
    sampler.begin();
    num = 6.0;
    den = 2.0;
    sampler.onProgress(10);
    num = 6.0; // empty denominator interval: ratio reports 0
    den = 2.0;
    sampler.onProgress(20);
    sampler.finish(20);
    const auto ratio = sampler.series().column("ratio");
    ASSERT_EQ(ratio.size(), 2u);
    EXPECT_DOUBLE_EQ(ratio[0], 3.0);
    EXPECT_DOUBLE_EQ(ratio[1], 0.0);
}

TEST(Sampler, DefaultDerivedSpecsMatchRegisteredColumns)
{
    const auto config = sim::SystemConfig::haswellXeonE52650Lv3();
    sim::CpuSimulator simulator(config, /*seed=*/1);
    MetricsRegistry registry;
    registerSimulatorMetrics(registry, simulator);
    // Every default spec resolves against a real registry (begin()
    // would panic on a typo).
    IntervalSampler sampler(registry, 1000, defaultDerivedSpecs());
    sampler.begin();
    sampler.finish(0);
    EXPECT_NE(sampler.series().columnIndex("ipc"), size_t(-1));
    EXPECT_NE(sampler.series().columnIndex("mispredict_rate"),
              size_t(-1));
}

TEST(Sampler, CoefficientOfVariationBehaves)
{
    TimeSeries series;
    series.columns = {"v"};
    series.rows = {{2.0}, {2.0}, {2.0}};
    series.endOps = {1, 2, 3};
    EXPECT_DOUBLE_EQ(coefficientOfVariation(series, "v"), 0.0);
    series.rows = {{1.0}, {3.0}};
    EXPECT_NEAR(coefficientOfVariation(series, "v"), 0.5, 1e-12);
    series.rows = {{1.0}};
    EXPECT_DOUBLE_EQ(coefficientOfVariation(series, "v"), 0.0);
}

// ------------------------------------------------------------------- sinks

TimeSeries
tinySeries()
{
    TimeSeries series;
    series.intervalOps = 10;
    series.columns = {"a", "b"};
    series.endOps = {10, 20};
    series.rows = {{1.0, 0.5}, {2.0, 0.25}};
    return series;
}

TEST(Sink, CsvRenderHasHeaderAndOneRowPerInterval)
{
    std::ostringstream out;
    renderSeriesCsv(tinySeries(), out);
    EXPECT_EQ(out.str(),
              "interval,end_ops,a,b\n"
              "0,10,1,0.5\n"
              "1,20,2,0.25\n");
}

TEST(Sink, JsonlRenderEmitsOneObjectPerInterval)
{
    std::ostringstream out;
    renderSeriesJsonl(tinySeries(), out);
    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
    EXPECT_NE(text.find("\"interval\":0"), std::string::npos);
    EXPECT_NE(text.find("\"end_ops\":20"), std::string::npos);
    EXPECT_NE(text.find("\"a\":2"), std::string::npos);
}

TEST(Sink, MemorySinkStoresSeriesByPair)
{
    MemorySink sink;
    sink.write("505.mcf_r", tinySeries());
    ASSERT_NE(sink.find("505.mcf_r"), nullptr);
    EXPECT_EQ(sink.find("505.mcf_r")->numIntervals(), 2u);
    EXPECT_EQ(sink.find("nope"), nullptr);
    EXPECT_EQ(sink.all().size(), 1u);
}

TEST(Sink, FileSinkCommitsAtomicallyIntoDirectory)
{
    const std::string dir =
        std::string(::testing::TempDir()) + "/telemetry_sink_test";
    FileSink sink(dir, FileSink::Format::Csv);
    const std::string path = sink.pathFor("505.mcf_r");
    EXPECT_EQ(path, dir + "/505.mcf_r.telemetry.csv");
    sink.write("505.mcf_r", tinySeries());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "interval,end_ops,a,b");
    // No temp residue after the rename commit.
    EXPECT_FALSE(std::ifstream(path + ".tmp").good());
    std::remove(path.c_str());
}

TEST(Sink, UnwritableDirectoryWarnsButDoesNotThrow)
{
    FileSink sink("/proc/definitely/not/writable");
    sink.write("x", tinySeries());
    sink.write("y", tinySeries()); // second write is silently dropped
    SUCCEED();
}

// ---------------------------------------------------------------- progress

TEST(Progress, EmitsFirstAndLastAndThrottlesBetween)
{
    std::ostringstream out;
    ProgressReporter::Options options;
    options.minIntervalMs = 60'000; // nothing mid-sweep can pass
    options.stream = &out;
    ProgressReporter reporter(options);
    for (std::size_t i = 0; i < 5; ++i)
        reporter.onItemDone("pair" + std::to_string(i), i, 5, 1000, 1,
                            false);
    EXPECT_EQ(reporter.itemsDone(), 5u);
    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
    EXPECT_NE(text.find("pair0"), std::string::npos);
    EXPECT_NE(text.find("pair4"), std::string::npos);
    EXPECT_NE(text.find("done=5/5"), std::string::npos);
    EXPECT_NE(text.find("eta_s=0.0"), std::string::npos);
}

TEST(Progress, ZeroThrottleEmitsEveryItem)
{
    std::ostringstream out;
    ProgressReporter::Options options;
    options.minIntervalMs = 0;
    options.stream = &out;
    ProgressReporter reporter(options);
    for (std::size_t i = 0; i < 3; ++i)
        reporter.onItemDone("p", i, 3, 10, 2, i == 2);
    const std::string text = out.str();
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
    EXPECT_NE(text.find("errored=1"), std::string::npos);
    EXPECT_NE(text.find("attempts=2"), std::string::npos);
}

TEST(Progress, FinalEventFiresRegardlessOfCompletionOrder)
{
    // Parallel workers can complete out of order: the item carrying
    // the last index may finish first, and the truly last completion
    // may carry any index. The final (unthrottled) event must key on
    // the count of reported items, not on the index.
    std::ostringstream out;
    ProgressReporter::Options options;
    options.minIntervalMs = 60'000;
    options.stream = &out;
    ProgressReporter reporter(options);
    const std::size_t order[] = {4, 0, 3, 1, 2}; // last index first
    for (std::size_t index : order)
        reporter.onItemDone("pair" + std::to_string(index), index, 5,
                            1000, 1, false);
    const std::string text = out.str();
    // First item always emits; only the true completion is "last".
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
    EXPECT_NE(text.find("done=5/5"), std::string::npos);
    EXPECT_NE(text.find("pair2"), std::string::npos);
    EXPECT_EQ(text.find("done=4/5"), std::string::npos);
}

TEST(Progress, ReplayedItemsAreExcludedFromRateAndEta)
{
    // Resuming a sweep replays the journal prefix in microseconds; if
    // those items fed the rate, the ETA would project the rest of the
    // sweep finishing almost instantly.
    std::ostringstream out;
    ProgressReporter::Options options;
    options.minIntervalMs = 0;
    options.stream = &out;
    ProgressReporter reporter(options);
    for (std::size_t i = 0; i < 3; ++i) {
        reporter.onItemDone("replay" + std::to_string(i), i, 6,
                            1'000'000'000, 1, false, /*replayed=*/true);
    }
    const std::string text = out.str();
    // No simulated item yet: no ops counted, no ETA extrapolated.
    EXPECT_NE(text.find("ops_per_s=0"), std::string::npos);
    EXPECT_NE(text.find("eta_s=0.0"), std::string::npos);
    EXPECT_EQ(text.find("ops_per_s=1"), std::string::npos);
    EXPECT_NE(text.find("done=3/6"), std::string::npos);
    EXPECT_EQ(reporter.itemsDone(), 3u);
}

// ------------------------------------------------ golden determinism tests

suite::RunnerOptions
sampledOptions(std::uint64_t interval)
{
    suite::RunnerOptions options;
    options.sampleOps = 100'000;
    options.warmupOps = 20'000;
    options.sampleIntervalOps = interval;
    return options;
}

AppInputPair
cpu2017Pair(const std::string &name)
{
    return {&workloads::findProfile(workloads::cpu2017Suite(), name),
            InputSize::Ref, 0};
}

TEST(Golden, SamplingDoesNotPerturbAggregateCounters)
{
    suite::SuiteRunner plain(sampledOptions(0));
    suite::SuiteRunner sampled(sampledOptions(10'000));
    const auto a = plain.runPair(cpu2017Pair("505.mcf_r"));
    const auto b = sampled.runPair(cpu2017Pair("505.mcf_r"));
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto event = static_cast<PerfEvent>(e);
        EXPECT_EQ(a.counters.get(event), b.counters.get(event))
            << perfEventName(event);
    }
    EXPECT_DOUBLE_EQ(a.wallCycles, b.wallCycles);
    EXPECT_EQ(a.series, nullptr);
    ASSERT_NE(b.series, nullptr);
    EXPECT_EQ(b.series->numIntervals(), 10u);
}

TEST(Golden, SameSeedSameIntervalIsByteIdentical)
{
    suite::SuiteRunner a(sampledOptions(10'000));
    suite::SuiteRunner b(sampledOptions(10'000));
    const auto ra = a.runPair(cpu2017Pair("541.leela_r"));
    const auto rb = b.runPair(cpu2017Pair("541.leela_r"));
    ASSERT_NE(ra.series, nullptr);
    ASSERT_NE(rb.series, nullptr);
    std::ostringstream ca, cb;
    renderSeriesCsv(*ra.series, ca);
    renderSeriesCsv(*rb.series, cb);
    EXPECT_EQ(ca.str(), cb.str());
}

TEST(Golden, IntervalDeltasReconcileWithAggregates)
{
    suite::SuiteRunner runner(sampledOptions(7'000)); // partial tail
    const auto result = runner.runPair(cpu2017Pair("505.mcf_r"));
    ASSERT_NE(result.series, nullptr);
    // Counter columns sum to the measured-window aggregate: the
    // baseline lands exactly at the end of warmup.
    for (const auto &[column, event] :
         {std::pair<const char *, PerfEvent>{
              "perf.inst_retired.any", PerfEvent::InstRetiredAny},
          {"perf.cpu_clk_unhalted.ref_tsc",
           PerfEvent::CpuClkUnhaltedRefTsc},
          {"perf.br_inst_exec.all_branches",
           PerfEvent::BrInstExecAllBranches},
          {"perf.mem_uops_retired.all_loads",
           PerfEvent::MemUopsRetiredAllLoads}}) {
        // The aggregate counter set stores integers while the series
        // keeps fractional cycles, so allow one count of rounding.
        EXPECT_NEAR(result.series->columnSum(column),
                    double(result.counters.get(event)), 1.0)
            << column;
    }
}

TEST(Golden, RunnerHandsSeriesToTheSink)
{
    MemorySink sink;
    auto options = sampledOptions(25'000);
    options.telemetrySink = &sink;
    suite::SuiteRunner runner(options);
    const auto result = runner.runPair(cpu2017Pair("505.mcf_r"));
    ASSERT_NE(sink.find(result.name), nullptr);
    EXPECT_EQ(sink.find(result.name)->numIntervals(), 4u);
}

TEST(Golden, MulticorePairsSampleCoarselyWithoutPerturbation)
{
    // Multicore pairs sample in coarse mode: context chunks cannot be
    // cut at interval boundaries (chunk size shapes L3 contention),
    // so each row lands at the first chunk end past its boundary.
    // Sampling stays observation-only on this path too.
    suite::SuiteRunner plain(sampledOptions(0));
    suite::SuiteRunner sampled(sampledOptions(10'000));
    const auto a = plain.runPair(cpu2017Pair("619.lbm_s"));
    const auto b = sampled.runPair(cpu2017Pair("619.lbm_s"));
    EXPECT_FALSE(b.errored);
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto event = static_cast<PerfEvent>(e);
        EXPECT_EQ(a.counters.get(event), b.counters.get(event))
            << perfEventName(event);
    }
    EXPECT_DOUBLE_EQ(a.wallCycles, b.wallCycles);
    EXPECT_EQ(a.series, nullptr);
    ASSERT_NE(b.series, nullptr);
    EXPECT_GT(b.series->numIntervals(), 0u);
    // The multicore baseline is taken before the run (contexts share
    // the L3 during each other's warmup, so there is no machine-wide
    // warmup-end instant): the series spans warmup + sample, unlike
    // the single-core measured-window series.
    EXPECT_NEAR(b.series->columnSum("perf.inst_retired.any"),
                double(b.counters.get(PerfEvent::InstRetiredAny))
                    + 20'000.0,
                1.0);
}

} // namespace
} // namespace telemetry
} // namespace spec17
