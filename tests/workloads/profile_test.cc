#include "workloads/profile.hh"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace spec17 {
namespace workloads {
namespace {

TEST(Cpu2017Suite, HasAll43Applications)
{
    const auto &suite = cpu2017Suite();
    EXPECT_EQ(suite.size(), 43u);
    std::map<SuiteKind, int> per_suite;
    for (const auto &p : suite)
        ++per_suite[p.suite];
    EXPECT_EQ(per_suite[SuiteKind::RateInt], 10);
    EXPECT_EQ(per_suite[SuiteKind::RateFp], 13);
    EXPECT_EQ(per_suite[SuiteKind::SpeedInt], 10);
    EXPECT_EQ(per_suite[SuiteKind::SpeedFp], 10);
}

TEST(Cpu2017Suite, PairCountsMatchThePaper)
{
    // Paper Section II: 69 test / 61 train / 64 ref pairs.
    const auto &suite = cpu2017Suite();
    EXPECT_EQ(enumeratePairs(suite, InputSize::Test).size(), 69u);
    EXPECT_EQ(enumeratePairs(suite, InputSize::Train).size(), 61u);
    EXPECT_EQ(enumeratePairs(suite, InputSize::Ref).size(), 64u);
}

TEST(Cpu2017Suite, ExactlyFivePairsErrored)
{
    // Paper Section III: 627.cam4_s on all three sizes plus
    // perlbench_r/_s test.pl.
    const auto &suite = cpu2017Suite();
    int errored = 0;
    for (InputSize size : kAllInputSizes) {
        for (const auto &pair : enumeratePairs(suite, size)) {
            errored +=
                pair.profile->isErrored(size, pair.inputIndex) ? 1 : 0;
        }
    }
    EXPECT_EQ(errored, 5);
    EXPECT_TRUE(findProfile(suite, "627.cam4_s")
                    .isErrored(InputSize::Ref, 0));
    EXPECT_TRUE(findProfile(suite, "500.perlbench_r")
                    .isErrored(InputSize::Test, 0));
    EXPECT_FALSE(findProfile(suite, "500.perlbench_r")
                     .isErrored(InputSize::Ref, 0));
}

TEST(Cpu2017Suite, NamesAreUniqueAndWellFormed)
{
    std::set<std::string> names;
    std::set<int> ids;
    for (const auto &p : cpu2017Suite()) {
        EXPECT_TRUE(names.insert(p.name).second) << p.name;
        EXPECT_TRUE(ids.insert(p.benchmarkId).second) << p.benchmarkId;
        // "NNN.something_r" or "_s".
        EXPECT_EQ(p.name.find(std::to_string(p.benchmarkId) + "."), 0u);
        const char tail = p.name.back();
        if (workloads::isSpeedSuite(p.suite))
            EXPECT_EQ(tail, 's') << p.name;
        else
            EXPECT_EQ(tail, 'r') << p.name;
    }
}

TEST(Cpu2017Suite, SpeedFpAndXzRunFourThreads)
{
    const auto &suite = cpu2017Suite();
    for (const auto &p : suite) {
        if (p.suite == SuiteKind::SpeedFp) {
            EXPECT_EQ(p.numThreads, 4u) << p.name;
        }
    }
    EXPECT_EQ(findProfile(suite, "657.xz_s").numThreads, 4u);
    EXPECT_EQ(findProfile(suite, "605.mcf_s").numThreads, 1u);
    EXPECT_EQ(findProfile(suite, "505.mcf_r").numThreads, 1u);
}

TEST(Cpu2017Suite, RefInstructionAveragesMatchTableTwo)
{
    // Table II ref averages (billions): rate int 1751.5, rate fp
    // 2291.1, speed int 2265.2, speed fp 21880.1 -- per application.
    std::map<SuiteKind, std::pair<double, int>> acc;
    for (const auto &p : cpu2017Suite()) {
        acc[p.suite].first += p.refInstrBillions;
        acc[p.suite].second += 1;
    }
    EXPECT_NEAR(acc[SuiteKind::RateInt].first / 10, 1751.5, 10.0);
    EXPECT_NEAR(acc[SuiteKind::RateFp].first / 13, 2291.1, 10.0);
    EXPECT_NEAR(acc[SuiteKind::SpeedInt].first / 10, 2265.2, 10.0);
    EXPECT_NEAR(acc[SuiteKind::SpeedFp].first / 10, 21880.1, 10.0);
}

TEST(Cpu2017Suite, PaperNamedExtremesAreEncoded)
{
    const auto &suite = cpu2017Suite();
    const auto &mcf = findProfile(suite, "505.mcf_r");
    EXPECT_NEAR(mcf.branchFrac, 0.31277, 1e-9);
    EXPECT_NEAR(mcf.memory.l2MissRate, 0.657, 1e-3);
    const auto &leela = findProfile(suite, "541.leela_r");
    EXPECT_NEAR(leela.branches.mispredictRate, 0.08656, 1e-9);
    const auto &xchg = findProfile(suite, "548.exchange2_r");
    EXPECT_NEAR(xchg.storeFrac, 0.15911, 1e-9);
    EXPECT_NEAR(xchg.rssRefMiB, 1.148, 1e-6);
    const auto &xz = findProfile(suite, "657.xz_s");
    EXPECT_NEAR(xz.rssRefMiB / 1024.0, 12.385, 0.01); // GiB
    const auto &roms = findProfile(suite, "654.roms_s");
    EXPECT_NEAR(roms.loadFrac, 0.11504, 1e-9);
    EXPECT_NEAR(roms.storeFrac, 0.00895, 1e-9);
    const auto &lbm = findProfile(suite, "519.lbm_r");
    EXPECT_NEAR(lbm.branchFrac, 0.01198, 1e-9);
}

TEST(Cpu2006Suite, Has29ApplicationsSplitTwelveSeventeen)
{
    const auto &suite = cpu2006Suite();
    EXPECT_EQ(suite.size(), 29u);
    int ints = 0, fps = 0;
    for (const auto &p : suite) {
        EXPECT_EQ(p.generation, SuiteGeneration::Cpu2006);
        (isIntSuite(p.suite) ? ints : fps) += 1;
    }
    EXPECT_EQ(ints, 12);
    EXPECT_EQ(fps, 17);
}

TEST(Profiles, InstrBillionsScalesWithInputSize)
{
    const auto &gcc = findProfile(cpu2017Suite(), "502.gcc_r");
    EXPECT_GT(gcc.instrBillions(InputSize::Ref),
              gcc.instrBillions(InputSize::Train));
    EXPECT_GT(gcc.instrBillions(InputSize::Train),
              gcc.instrBillions(InputSize::Test));
    EXPECT_DOUBLE_EQ(gcc.instrBillions(InputSize::Ref),
                     gcc.refInstrBillions);
}

TEST(Profiles, FootprintScalesWithInputSize)
{
    const auto &xz = findProfile(cpu2017Suite(), "557.xz_r");
    EXPECT_LT(xz.rssMiB(InputSize::Test), xz.rssMiB(InputSize::Ref));
    EXPECT_LE(xz.rssMiB(InputSize::Ref), xz.vszMiB(InputSize::Ref));
}

TEST(Pairs, DisplayNamesDisambiguateInputs)
{
    const auto &suite = cpu2017Suite();
    const auto pairs = enumeratePairs(suite, InputSize::Ref);
    std::set<std::string> names;
    for (const auto &pair : pairs)
        EXPECT_TRUE(names.insert(pair.displayName()).second)
            << pair.displayName();
    // Multi-input apps get -inN suffixes; single-input apps don't.
    bool found_gcc_in3 = false, found_plain_mcf = false;
    for (const auto &name : names) {
        found_gcc_in3 |= name == "502.gcc_r-in3";
        found_plain_mcf |= name == "505.mcf_r";
    }
    EXPECT_TRUE(found_gcc_in3);
    EXPECT_TRUE(found_plain_mcf);
}

TEST(Pairs, SuiteKindFilterWorks)
{
    const auto &suite = cpu2017Suite();
    const auto rate_int =
        enumeratePairs(suite, InputSize::Ref, SuiteKind::RateInt);
    // 10 apps: perlbench x3, gcc x5, x264 x3, xz x3 + 6 singles = 20.
    EXPECT_EQ(rate_int.size(), 20u);
    for (const auto &pair : rate_int)
        EXPECT_EQ(pair.profile->suite, SuiteKind::RateInt);
}

TEST(ProfilesDeathTest, FindProfilePanicsOnUnknown)
{
    EXPECT_DEATH(findProfile(cpu2017Suite(), "999.nope_r"),
                 "no profile");
}

TEST(Profiles, EveryProfileValidates)
{
    for (const auto &p : cpu2017Suite())
        p.validate();
    for (const auto &p : cpu2006Suite())
        p.validate();
    SUCCEED();
}

TEST(Profiles, SuiteKindNames)
{
    EXPECT_EQ(suiteKindName(SuiteKind::RateInt), "rate int");
    EXPECT_EQ(suiteKindName(SuiteKind::SpeedFp), "speed fp");
    EXPECT_EQ(inputSizeName(InputSize::Ref), "ref");
}

} // namespace
} // namespace workloads
} // namespace spec17
