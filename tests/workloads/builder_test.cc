#include "workloads/builder.hh"

#include <gtest/gtest.h>

#include "trace/synthetic.hh"

namespace spec17 {
namespace workloads {
namespace {

AppInputPair
pairFor(const std::string &name, InputSize size = InputSize::Ref,
        unsigned input = 0)
{
    return {&findProfile(cpu2017Suite(), name), size, input};
}

TEST(Builder, ParamsValidateForEveryPairAndThread)
{
    BuildOptions options;
    options.sampleOps = 100000;
    for (InputSize size : kAllInputSizes) {
        for (const auto &pair : enumeratePairs(cpu2017Suite(), size)) {
            for (unsigned t = 0; t < pair.profile->numThreads; ++t) {
                const auto params =
                    buildTraceParams(pair, options, t);
                params.validate(); // panics on nonsense
            }
        }
    }
    SUCCEED();
}

TEST(Builder, MixMatchesProfileUpToJitter)
{
    const auto params = buildTraceParams(pairFor("505.mcf_r"), {});
    const auto &profile = findProfile(cpu2017Suite(), "505.mcf_r");
    EXPECT_NEAR(params.loadFrac, profile.loadFrac,
                profile.loadFrac * 0.05);
    EXPECT_NEAR(params.storeFrac, profile.storeFrac,
                profile.storeFrac * 0.05);
    EXPECT_NEAR(params.branchFrac, profile.branchFrac,
                profile.branchFrac * 0.05);
}

TEST(Builder, OpsAreSplitAcrossThreads)
{
    BuildOptions options;
    options.sampleOps = 1000000;
    const auto params =
        buildTraceParams(pairFor("619.lbm_s"), options, 0);
    EXPECT_EQ(params.numOps, 250000u); // 4 threads
    const auto solo = buildTraceParams(pairFor("505.mcf_r"), options);
    EXPECT_EQ(solo.numOps, 1000000u);
}

TEST(Builder, ThreadsGetDistinctSeedsAndOffsets)
{
    const auto t0 = buildTraceParams(pairFor("619.lbm_s"), {}, 0);
    const auto t1 = buildTraceParams(pairFor("619.lbm_s"), {}, 1);
    EXPECT_NE(t0.seed, t1.seed);
    // lbm_s declares a mostly-private working set.
    EXPECT_NE(t0.addressOffset, t1.addressOffset);
    // pop2_s declares a mostly-shared one.
    const auto p0 = buildTraceParams(pairFor("628.pop2_s"), {}, 0);
    const auto p1 = buildTraceParams(pairFor("628.pop2_s"), {}, 1);
    EXPECT_EQ(p0.addressOffset, p1.addressOffset);
}

TEST(Builder, InputsPerturbDeterministically)
{
    const auto in1 = buildTraceParams(pairFor("502.gcc_r", InputSize::Ref,
                                              0), {});
    const auto in2 = buildTraceParams(pairFor("502.gcc_r", InputSize::Ref,
                                              1), {});
    const auto in1_again = buildTraceParams(
        pairFor("502.gcc_r", InputSize::Ref, 0), {});
    EXPECT_NE(in1.seed, in2.seed);
    EXPECT_NE(in1.loadFrac, in2.loadFrac); // jittered differently
    EXPECT_DOUBLE_EQ(in1.loadFrac, in1_again.loadFrac);
}

TEST(Builder, StreamingProfilesGetStridedDeepRegions)
{
    const auto lbm = buildTraceParams(pairFor("519.lbm_r"), {});
    bool strided = false;
    for (const auto &region : lbm.regions)
        strided |= region.pattern == trace::AccessPattern::Strided;
    EXPECT_TRUE(strided);

    const auto mcf = buildTraceParams(pairFor("505.mcf_r"), {});
    bool chase = false;
    for (const auto &region : mcf.regions) {
        EXPECT_NE(region.pattern, trace::AccessPattern::Strided);
        chase |= region.pattern == trace::AccessPattern::PointerChase;
    }
    EXPECT_TRUE(chase);
}

TEST(Builder, HigherMissTargetsShiftWeightDeeper)
{
    const auto light = buildTraceParams(pairFor("548.exchange2_r"), {});
    const auto heavy = buildTraceParams(pairFor("619.lbm_s"), {});
    auto hot_weight = [](const trace::SyntheticTraceParams &p) {
        double total = 0.0, hot = 0.0;
        for (const auto &region : p.regions) {
            total += region.loadWeight;
            if (region.sizeBytes <= 32 * 1024)
                hot += region.loadWeight;
        }
        return hot / total;
    };
    EXPECT_GT(hot_weight(light), 0.97);
    EXPECT_LT(hot_weight(heavy), 0.92);
    EXPECT_LT(hot_weight(heavy), hot_weight(light));
}

TEST(Builder, MispredictTargetLowersHardFraction)
{
    const auto leela = buildTraceParams(pairFor("541.leela_r"), {});
    const auto lbm = buildTraceParams(pairFor("519.lbm_r"), {});
    EXPECT_GT(leela.hardBranchFrac, lbm.hardBranchFrac);
    EXPECT_GT(leela.hardBranchFrac, 0.1);
    EXPECT_LT(lbm.hardBranchFrac, 0.01);
    // Easy-site floor also scales with the target.
    EXPECT_LT(leela.easyTakenBias, lbm.easyTakenBias);
}

TEST(Builder, SitePopulationsScaleWithSample)
{
    BuildOptions small;
    small.sampleOps = 50000;
    BuildOptions big;
    big.sampleOps = 5000000;
    const auto few =
        buildTraceParams(pairFor("519.lbm_r"), small); // 1.2% branches
    const auto many = buildTraceParams(pairFor("505.mcf_r"), big);
    EXPECT_LT(few.numBranchSites, many.numBranchSites);
    EXPECT_GE(few.numBranchSites, 16u);
}

TEST(BuilderDeathTest, RejectsOutOfRangeSelections)
{
    EXPECT_DEATH(buildTraceParams(pairFor("505.mcf_r", InputSize::Ref, 3),
                                  {}),
                 "input 3 out of");
    EXPECT_DEATH(buildTraceParams(pairFor("505.mcf_r"), {}, 2),
                 "thread 2 out of");
}

TEST(Builder, GeneratorRunsOnBuiltParams)
{
    auto params = buildTraceParams(pairFor("523.xalancbmk_r"), {});
    params.numOps = 20000;
    trace::SyntheticTraceGenerator gen(params);
    isa::MicroOp op;
    std::uint64_t count = 0;
    while (gen.next(op))
        ++count;
    EXPECT_EQ(count, 20000u);
}

} // namespace
} // namespace workloads
} // namespace spec17
