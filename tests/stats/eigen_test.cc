#include "stats/eigen.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"

namespace spec17 {
namespace stats {
namespace {

TEST(Eigen, DiagonalMatrixReturnsSortedDiagonal)
{
    Matrix a(3, 3);
    a.at(0, 0) = 2.0;
    a.at(1, 1) = 5.0;
    a.at(2, 2) = 1.0;
    const EigenDecomposition e = jacobiEigenSymmetric(a);
    ASSERT_EQ(e.values.size(), 3u);
    EXPECT_NEAR(e.values[0], 5.0, 1e-12);
    EXPECT_NEAR(e.values[1], 2.0, 1e-12);
    EXPECT_NEAR(e.values[2], 1.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    const Matrix a = Matrix::fromRows({{2, 1}, {1, 2}});
    const EigenDecomposition e = jacobiEigenSymmetric(a);
    EXPECT_NEAR(e.values[0], 3.0, 1e-12);
    EXPECT_NEAR(e.values[1], 1.0, 1e-12);
    // Eigenvector for lambda=3 is (1,1)/sqrt(2) with positive sign.
    EXPECT_NEAR(e.vectors.at(0, 0), 1.0 / std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(e.vectors.at(1, 0), 1.0 / std::sqrt(2.0), 1e-9);
}

TEST(Eigen, ReconstructsInputMatrix)
{
    Rng rng(42);
    const std::size_t n = 8;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a.at(i, j) = a.at(j, i) = rng.nextGaussian();

    const EigenDecomposition e = jacobiEigenSymmetric(a);
    // Rebuild V diag(w) V^T.
    Matrix vd(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            vd.at(r, c) = e.vectors.at(r, c) * e.values[c];
    const Matrix rebuilt = vd.multiply(e.vectors.transpose());
    EXPECT_LT(rebuilt.maxAbsDiff(a), 1e-8);
}

TEST(Eigen, VectorsAreOrthonormal)
{
    Rng rng(7);
    const std::size_t n = 10;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a.at(i, j) = a.at(j, i) = rng.nextDouble();

    const EigenDecomposition e = jacobiEigenSymmetric(a);
    const Matrix vtv = e.vectors.transpose().multiply(e.vectors);
    EXPECT_LT(vtv.maxAbsDiff(Matrix::identity(n)), 1e-9);
}

TEST(Eigen, TraceIsPreserved)
{
    Rng rng(91);
    const std::size_t n = 6;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i; j < n; ++j)
            a.at(i, j) = a.at(j, i) = rng.nextGaussian() * 2.0;

    const EigenDecomposition e = jacobiEigenSymmetric(a);
    double trace = 0.0, sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        trace += a.at(i, i);
        sum += e.values[i];
    }
    EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(Eigen, PositiveSemidefiniteInputHasNonnegativeSpectrum)
{
    // Gram matrix B^T B is PSD.
    Rng rng(3);
    Matrix b(12, 5);
    for (std::size_t r = 0; r < b.rows(); ++r)
        for (std::size_t c = 0; c < b.cols(); ++c)
            b.at(r, c) = rng.nextGaussian();
    const Matrix gram = b.transpose().multiply(b);
    const EigenDecomposition e = jacobiEigenSymmetric(gram);
    for (double v : e.values)
        EXPECT_GE(v, -1e-9);
}

TEST(EigenDeathTest, RejectsNonSymmetricAndNonSquare)
{
    const Matrix bad = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_DEATH(jacobiEigenSymmetric(bad), "not symmetric");
    const Matrix rect(2, 3);
    EXPECT_DEATH(jacobiEigenSymmetric(rect), "square");
}

TEST(Eigen, SignConventionIsDeterministic)
{
    const Matrix a = Matrix::fromRows({{4, 1, 0}, {1, 3, 1}, {0, 1, 2}});
    const EigenDecomposition e1 = jacobiEigenSymmetric(a);
    const EigenDecomposition e2 = jacobiEigenSymmetric(a);
    EXPECT_DOUBLE_EQ(e1.vectors.maxAbsDiff(e2.vectors), 0.0);
    // Largest-magnitude entry of each eigenvector is positive.
    for (std::size_t c = 0; c < 3; ++c) {
        double best = 0.0;
        for (std::size_t r = 0; r < 3; ++r)
            if (std::fabs(e1.vectors.at(r, c)) > std::fabs(best))
                best = e1.vectors.at(r, c);
        EXPECT_GT(best, 0.0);
    }
}

} // namespace
} // namespace stats
} // namespace spec17
