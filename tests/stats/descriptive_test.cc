#include "stats/descriptive.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.hh"

namespace spec17 {
namespace stats {
namespace {

TEST(Descriptive, MeanAndStddevOfKnownSample)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    // Sample stddev with n-1 denominator.
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(variancePopulation(xs), 4.0);
}

TEST(Descriptive, SingleElementHasZeroSpread)
{
    const std::vector<double> xs = {3.25};
    EXPECT_DOUBLE_EQ(mean(xs), 3.25);
    EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(DescriptiveDeathTest, EmptySamplePanics)
{
    const std::vector<double> empty;
    EXPECT_DEATH(mean(empty), "empty");
    EXPECT_DEATH(stddev(empty), "empty");
    EXPECT_DEATH(median(empty), "empty");
    EXPECT_DEATH(minOf(empty), "empty");
}

TEST(Descriptive, MinMaxMedian)
{
    const std::vector<double> xs = {5.0, 1.0, 9.0, 3.0};
    EXPECT_DOUBLE_EQ(minOf(xs), 1.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 9.0);
    EXPECT_DOUBLE_EQ(median(xs), 4.0);
    EXPECT_DOUBLE_EQ(median({5.0, 1.0, 9.0}), 5.0);
}

TEST(Descriptive, PearsonPerfectAndInverseCorrelation)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> up = {2, 4, 6, 8, 10};
    const std::vector<double> down = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
    EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Descriptive, PearsonZeroVarianceReturnsZero)
{
    const std::vector<double> xs = {1, 2, 3};
    const std::vector<double> flat = {4, 4, 4};
    EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(Descriptive, PearsonOfIndependentStreamsIsSmall)
{
    Rng rng(123);
    std::vector<double> a(5000), b(5000);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.nextDouble();
        b[i] = rng.nextDouble();
    }
    EXPECT_LT(std::fabs(pearson(a, b)), 0.05);
}

TEST(Descriptive, GeomeanOfPowersOfTwo)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_DEATH(geomean({1.0, 0.0}), "positive");
}

TEST(RunningStats, MatchesBatchStatistics)
{
    Rng rng(55);
    RunningStats rs;
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextGaussian() * 3.0 + 10.0;
        rs.add(x);
        xs.push_back(x);
    }
    EXPECT_EQ(rs.count(), 1000u);
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
    EXPECT_DOUBLE_EQ(rs.min(), minOf(xs));
    EXPECT_DOUBLE_EQ(rs.max(), maxOf(xs));
}

TEST(RunningStats, EmptyAccumulatorIsBenign)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

} // namespace
} // namespace stats
} // namespace spec17
