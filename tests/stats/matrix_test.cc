#include "stats/matrix.hh"

#include <gtest/gtest.h>

#include <cmath>

namespace spec17 {
namespace stats {
namespace {

TEST(Matrix, ConstructionAndIndexing)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
    m.at(0, 1) = -2.0;
    EXPECT_DOUBLE_EQ(m.at(0, 1), -2.0);
}

TEST(MatrixDeathTest, OutOfRangeIndexPanics)
{
    Matrix m(2, 2);
    EXPECT_DEATH(m.at(2, 0), "out of");
    EXPECT_DEATH(m.at(0, 5), "out of");
}

TEST(Matrix, FromRowsRejectsRagged)
{
    EXPECT_DEATH(Matrix::fromRows({{1.0, 2.0}, {3.0}}), "ragged");
    const Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
}

TEST(Matrix, TransposeRoundTrips)
{
    const Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const Matrix t = m.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
    EXPECT_DOUBLE_EQ(m.maxAbsDiff(t.transpose()), 0.0);
}

TEST(Matrix, MultiplyAgainstHandComputedProduct)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    const Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, MultiplyByIdentityIsNoop)
{
    const Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    EXPECT_DOUBLE_EQ(a.multiply(Matrix::identity(3)).maxAbsDiff(a), 0.0);
}

TEST(MatrixDeathTest, MultiplyShapeMismatchPanics)
{
    const Matrix a(2, 3);
    const Matrix b(2, 3);
    EXPECT_DEATH(a.multiply(b), "multiply");
}

TEST(Matrix, CovarianceOfKnownData)
{
    // Columns: x = {1,2,3}, y = {2,4,6} => var(x)=1, var(y)=4, cov=2.
    const Matrix m = Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
    const Matrix cov = m.covariance();
    EXPECT_NEAR(cov.at(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(cov.at(1, 1), 4.0, 1e-12);
    EXPECT_NEAR(cov.at(0, 1), 2.0, 1e-12);
    EXPECT_NEAR(cov.at(1, 0), 2.0, 1e-12);
}

TEST(Matrix, CorrelationIsUnitDiagonalAndBounded)
{
    const Matrix m =
        Matrix::fromRows({{1, 5, 2}, {2, 3, 2}, {4, 1, 2}, {8, 0, 2}});
    const Matrix corr = m.correlation();
    for (std::size_t i = 0; i < corr.rows(); ++i) {
        EXPECT_NEAR(corr.at(i, i), 1.0, 1e-12);
        for (std::size_t j = 0; j < corr.cols(); ++j)
            EXPECT_LE(std::fabs(corr.at(i, j)), 1.0 + 1e-12);
    }
    // Column 2 is constant: self-correlation 1, cross-correlation 0.
    EXPECT_DOUBLE_EQ(corr.at(2, 0), 0.0);
    EXPECT_DOUBLE_EQ(corr.at(2, 2), 1.0);
}

TEST(Matrix, StandardizeColumnsYieldsZeroMeanUnitVariance)
{
    const Matrix m =
        Matrix::fromRows({{1, 10, 7}, {2, 20, 7}, {3, 30, 7}, {4, 40, 7}});
    const Matrix z = standardizeColumns(m);
    for (std::size_t c = 0; c < 2; ++c) {
        double mu = 0.0, ss = 0.0;
        for (std::size_t r = 0; r < z.rows(); ++r)
            mu += z.at(r, c);
        mu /= static_cast<double>(z.rows());
        for (std::size_t r = 0; r < z.rows(); ++r)
            ss += (z.at(r, c) - mu) * (z.at(r, c) - mu);
        EXPECT_NEAR(mu, 0.0, 1e-12);
        EXPECT_NEAR(ss / (z.rows() - 1), 1.0, 1e-12);
    }
    // Constant column becomes all zeros.
    for (std::size_t r = 0; r < z.rows(); ++r)
        EXPECT_DOUBLE_EQ(z.at(r, 2), 0.0);
}

TEST(Matrix, RowAndColExtraction)
{
    const Matrix m = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
    EXPECT_EQ(m.row(1), (std::vector<double>{3, 4}));
    EXPECT_EQ(m.col(0), (std::vector<double>{1, 3, 5}));
}

} // namespace
} // namespace stats
} // namespace spec17
