#include "stats/factor.hh"

#include <gtest/gtest.h>

#include "util/random.hh"

namespace spec17 {
namespace stats {
namespace {

/** Two blocks of correlated characteristics => two clean factors. */
Matrix
twoFactorData(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(n, 4);
    for (std::size_t r = 0; r < n; ++r) {
        const double f1 = rng.nextGaussian();
        const double f2 = rng.nextGaussian();
        m.at(r, 0) = f1 + 0.05 * rng.nextGaussian();
        m.at(r, 1) = -f1 + 0.05 * rng.nextGaussian(); // anti-correlated
        m.at(r, 2) = f2 + 0.05 * rng.nextGaussian();
        m.at(r, 3) = f2 + 0.05 * rng.nextGaussian();
    }
    return m;
}

TEST(Factor, IdentifiesPositiveAndNegativeDominators)
{
    const PcaResult pca = computePca(twoFactorData(500, 1));
    const std::vector<std::string> names = {"a", "anti_a", "b1", "b2"};
    const auto summaries = summarizeFactors(pca, names, 2, 0.5, 4);
    ASSERT_EQ(summaries.size(), 2u);

    // Each of the first two PCs must be dominated by one block; the
    // anti-correlated characteristic shows up with opposite sign to
    // its partner on whichever PC carries the "a" block.
    bool found_a_block = false;
    for (const auto &fs : summaries) {
        std::vector<std::string> pos, neg;
        for (const auto &fc : fs.positiveDominators)
            pos.push_back(fc.characteristic);
        for (const auto &fc : fs.negativeDominators)
            neg.push_back(fc.characteristic);
        const bool a_pos =
            std::find(pos.begin(), pos.end(), "a") != pos.end();
        const bool a_neg =
            std::find(neg.begin(), neg.end(), "a") != neg.end();
        const bool anti_pos =
            std::find(pos.begin(), pos.end(), "anti_a") != pos.end();
        const bool anti_neg =
            std::find(neg.begin(), neg.end(), "anti_a") != neg.end();
        if (a_pos || a_neg) {
            found_a_block = true;
            EXPECT_TRUE((a_pos && anti_neg) || (a_neg && anti_pos))
                << "a and anti_a must load with opposite signs";
        }
    }
    EXPECT_TRUE(found_a_block);
}

TEST(Factor, ExplainedVarianceMatchesPca)
{
    const PcaResult pca = computePca(twoFactorData(300, 2));
    const auto summaries =
        summarizeFactors(pca, {"a", "anti_a", "b1", "b2"}, 3);
    for (const auto &fs : summaries) {
        EXPECT_DOUBLE_EQ(fs.explainedVariance,
                         pca.explainedVariance[fs.component]);
    }
}

TEST(Factor, ThresholdFiltersWeakLoadings)
{
    const PcaResult pca = computePca(twoFactorData(300, 3));
    const auto strict =
        summarizeFactors(pca, {"a", "anti_a", "b1", "b2"}, 2, 0.99);
    for (const auto &fs : strict) {
        for (const auto &fc : fs.positiveDominators)
            EXPECT_GE(fc.loading, 0.99);
        for (const auto &fc : fs.negativeDominators)
            EXPECT_LE(fc.loading, -0.99);
    }
}

TEST(Factor, TopKCapsOutput)
{
    const PcaResult pca = computePca(twoFactorData(300, 4));
    const auto capped =
        summarizeFactors(pca, {"a", "anti_a", "b1", "b2"}, 2, 0.0, 1);
    for (const auto &fs : capped) {
        EXPECT_LE(fs.positiveDominators.size(), 1u);
        EXPECT_LE(fs.negativeDominators.size(), 1u);
    }
}

TEST(FactorDeathTest, NameCountMustMatch)
{
    const PcaResult pca = computePca(twoFactorData(100, 5));
    EXPECT_DEATH(summarizeFactors(pca, {"only", "three", "names"}, 2),
                 "must match");
    EXPECT_DEATH(summarizeFactors(pca, {"a", "b", "c", "d"}, 9),
                 "more components");
}

} // namespace
} // namespace stats
} // namespace spec17
