#include "stats/pca.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hh"
#include "util/random.hh"

namespace spec17 {
namespace stats {
namespace {

/** Synthesizes n observations where col1 = 2*col0 + noise and col2 is
 *  independent, so one strong component plus one weak one exist. */
Matrix
correlatedData(std::size_t n, double noise, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(n, 3);
    for (std::size_t r = 0; r < n; ++r) {
        const double x = rng.nextGaussian();
        m.at(r, 0) = x;
        m.at(r, 1) = 2.0 * x + noise * rng.nextGaussian();
        m.at(r, 2) = rng.nextGaussian();
    }
    return m;
}

TEST(Pca, ExplainedVarianceSumsToOne)
{
    const PcaResult pca = computePca(correlatedData(200, 0.1, 1));
    double total = 0.0;
    for (double v : pca.explainedVariance)
        total += v;
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_NEAR(pca.cumulativeVariance.back(), 1.0, 1e-9);
}

TEST(Pca, EigenvaluesAreDescending)
{
    const PcaResult pca = computePca(correlatedData(200, 0.5, 2));
    for (std::size_t i = 1; i < pca.eigenvalues.size(); ++i)
        EXPECT_GE(pca.eigenvalues[i - 1], pca.eigenvalues[i] - 1e-12);
}

TEST(Pca, StrongCorrelationConcentratesVarianceInPc1)
{
    const PcaResult pca = computePca(correlatedData(500, 0.01, 3));
    // Two of three standardized dims are nearly identical: PC1 should
    // hold ~2/3 of the variance.
    EXPECT_GT(pca.explainedVariance[0], 0.60);
    EXPECT_LT(pca.explainedVariance[2], 0.05);
}

TEST(Pca, ScoresAreUncorrelatedAcrossComponents)
{
    const PcaResult pca = computePca(correlatedData(400, 1.0, 4));
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = i + 1; j < 3; ++j) {
            const double r = pearson(pca.scores.col(i),
                                     pca.scores.col(j));
            EXPECT_NEAR(r, 0.0, 1e-6)
                << "PC" << i << " vs PC" << j;
        }
    }
}

TEST(Pca, ScoreVarianceEqualsEigenvalue)
{
    const PcaResult pca = computePca(correlatedData(300, 0.7, 5));
    for (std::size_t c = 0; c < 3; ++c) {
        const std::vector<double> s = pca.scores.col(c);
        const double var = stddev(s) * stddev(s);
        EXPECT_NEAR(var, pca.eigenvalues[c], 1e-9);
    }
}

TEST(Pca, ComponentsForVarianceFindsSmallestRank)
{
    const PcaResult pca = computePca(correlatedData(500, 0.01, 6));
    EXPECT_EQ(pca.componentsForVariance(0.6), 1u);
    EXPECT_EQ(pca.componentsForVariance(1.0), 3u);
}

TEST(Pca, TruncatedScoresKeepLeadingColumns)
{
    const PcaResult pca = computePca(correlatedData(50, 0.3, 7));
    const Matrix t = pca.truncatedScores(2);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t.rows(), 50u);
    for (std::size_t r = 0; r < t.rows(); ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(t.at(r, c), pca.scores.at(r, c));
    EXPECT_DEATH(pca.truncatedScores(0), "out of range");
    EXPECT_DEATH(pca.truncatedScores(4), "out of range");
}

TEST(Pca, ConstantColumnDoesNotPoisonResult)
{
    Rng rng(8);
    Matrix m(100, 3);
    for (std::size_t r = 0; r < m.rows(); ++r) {
        m.at(r, 0) = rng.nextGaussian();
        m.at(r, 1) = rng.nextGaussian();
        m.at(r, 2) = 42.0; // constant
    }
    const PcaResult pca = computePca(m);
    // The constant column contributes a zero eigenvalue.
    EXPECT_NEAR(pca.eigenvalues.back(), 0.0, 1e-9);
    EXPECT_NEAR(pca.cumulativeVariance.back(), 1.0, 1e-9);
}

TEST(Pca, LoadingsAreComponentTimesSqrtEigenvalue)
{
    const PcaResult pca = computePca(correlatedData(100, 0.4, 9));
    for (std::size_t c = 0; c < 3; ++c) {
        const double s = std::sqrt(std::max(0.0, pca.eigenvalues[c]));
        for (std::size_t r = 0; r < 3; ++r) {
            EXPECT_NEAR(pca.loadings.at(r, c),
                        pca.components.at(r, c) * s, 1e-12);
        }
    }
}

TEST(Pca, DeterministicAcrossRuns)
{
    const Matrix data = correlatedData(150, 0.2, 10);
    const PcaResult a = computePca(data);
    const PcaResult b = computePca(data);
    EXPECT_DOUBLE_EQ(a.scores.maxAbsDiff(b.scores), 0.0);
}

TEST(PcaDeathTest, RejectsDegenerateInput)
{
    EXPECT_DEATH(computePca(Matrix(1, 3)), "two observations");
    // All-constant data has zero total variance.
    EXPECT_DEATH(computePca(Matrix(5, 3, 1.0)), "no variance");
}

} // namespace
} // namespace stats
} // namespace spec17
