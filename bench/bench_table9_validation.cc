/**
 * @file
 * Regenerates Table IX: validating that PC proximity implies similar
 * characteristics, using the paper's example triple --
 * 603.bwaves_s-in1/-in2 (near twins) vs 607.cactuBSSN_s (isolated).
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Table IX: validating PC clustering", options);
    core::Characterizer session(options);

    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));
    auto find = [&](const std::string &name) -> const core::Metrics & {
        for (const auto &m : metrics) {
            if (m.name == name)
                return m;
        }
        SPEC17_PANIC("pair not found: ", name);
    };
    const core::Metrics &in1 = find("603.bwaves_s-in1");
    const core::Metrics &in2 = find("603.bwaves_s-in2");
    const core::Metrics &cactu = find("607.cactuBSSN_s");

    TextTable table({"Characteristic", "603.bwaves_s-in1",
                     "603.bwaves_s-in2", "607.cactuBSSN_s"});
    auto row = [&](const std::string &label,
                   double core::Metrics::*field, int digits) {
        table.addRow({label, fmtDouble(in1.*field, digits),
                      fmtDouble(in2.*field, digits),
                      fmtDouble(cactu.*field, digits)});
    };
    row("Instruction Count (B)", &core::Metrics::instrBillions, 3);
    row("% Loads", &core::Metrics::loadPct, 3);
    row("% Stores", &core::Metrics::storePct, 3);
    row("% Branches", &core::Metrics::branchPct, 3);
    row("RSS (GiB)", &core::Metrics::rssGiB, 3);
    row("VSZ (GiB)", &core::Metrics::vszGiB, 3);
    std::ostringstream os;
    table.render(os);
    std::printf("%s\n", os.str().c_str());

    bench::paperNote("bwaves_s-in1 instr (B)", 48788.718,
                     in1.instrBillions);
    bench::paperNote("bwaves_s-in2 instr (B)", 50116.477,
                     in2.instrBillions);
    bench::paperNote("cactuBSSN_s instr (B)", 10616.666,
                     cactu.instrBillions);
    bench::paperNote("bwaves_s-in1 % loads", 27.545, in1.loadPct);
    bench::paperNote("cactuBSSN_s % loads", 33.536, cactu.loadPct);
    bench::paperNote("bwaves_s-in1 RSS (GiB)", 11.677, in1.rssGiB);
    bench::paperNote("cactuBSSN_s RSS (GiB)", 6.885, cactu.rssGiB);

    // PC-space confirmation: the twins sit together, cactuBSSN away.
    const auto analysis = session.redundancyFor(/*speed=*/true);
    auto row_of = [&](const std::string &name) {
        for (std::size_t i = 0; i < analysis.pairNames.size(); ++i) {
            if (analysis.pairNames[i] == name)
                return i;
        }
        SPEC17_PANIC("pair not analyzed: ", name);
    };
    const double twins = cluster::euclidean(
        analysis.pcScores, row_of("603.bwaves_s-in1"),
        row_of("603.bwaves_s-in2"));
    const double cross = cluster::euclidean(
        analysis.pcScores, row_of("603.bwaves_s-in1"),
        row_of("607.cactuBSSN_s"));
    std::printf("PC distance in1<->in2: %.3f ; in1<->cactuBSSN_s: "
                "%.3f (ratio %.1fx)\n",
                twins, cross, cross / twins);
    return 0;
}
