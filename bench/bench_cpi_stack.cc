/**
 * @file
 * Extension experiment: per-application CPI stacks. The paper infers
 * bottlenecks indirectly (correlating IPC against miss and mispredict
 * rates); the simulator can attribute cycles directly. Prints the
 * base / frontend / branch / memory / compute breakdown per CPU2017
 * ref application and checks it against the paper's qualitative
 * bottleneck claims.
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "util/logging.hh"
#include "sim/simulator.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"
#include "suite/runner.hh"
#include "workloads/builder.hh"

using namespace spec17;

namespace {

/** Runs one single-thread pair and returns the per-op CPI stack. */
sim::CpiStack
stackOf(const workloads::AppInputPair &pair,
        const core::CharacterizerOptions &options)
{
    workloads::BuildOptions build;
    build.sampleOps = std::min<std::uint64_t>(
        options.runner.sampleOps, 800'000);
    trace::SyntheticTraceGenerator source(
        workloads::buildTraceParams(pair, build, 0));
    sim::CpuSimulator simulator(options.runner.system);
    suite::prefillSteadyState(simulator, source);
    simulator.run(source);
    return simulator.core().cpiStack().perInstruction(
        simulator.core().retired());
}

std::string
bar(double value, double total, std::size_t width = 28)
{
    return bench::asciiBar(value, total, width);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Extension: CPI stacks of the CPU2017 rate applications "
        "(ref, single copy)",
        options);

    TextTable table({"application", "CPI", "base", "frontend",
                     "branch", "memory", "compute", "memory share"});
    const auto &suite = workloads::cpu2017Suite();
    double worst_cpi = 0.0;
    struct Row
    {
        std::string name;
        sim::CpiStack stack;
    };
    std::vector<Row> rows;
    for (const auto &profile : suite) {
        if (workloads::isSpeedSuite(profile.suite))
            continue; // stacks are per-core; rate pairs suffice
        const sim::CpiStack stack =
            stackOf({&profile, workloads::InputSize::Ref, 0}, options);
        rows.push_back({profile.name, stack});
        worst_cpi = std::max(worst_cpi, stack.total());
    }
    for (const auto &row : rows) {
        const sim::CpiStack &s = row.stack;
        table.addRow({row.name, fmtDouble(s.total(), 3),
                      fmtDouble(s.base, 3), fmtDouble(s.frontend, 3),
                      fmtDouble(s.branch, 3), fmtDouble(s.memory, 3),
                      fmtDouble(s.compute, 3),
                      bar(s.memory, s.total())});
    }
    std::ostringstream os;
    table.render(os);
    std::printf("%s\n", os.str().c_str());

    auto stack_of = [&](const std::string &name) {
        for (const auto &row : rows) {
            if (row.name == name)
                return row.stack;
        }
        SPEC17_PANIC("no stack for ", name);
    };
    const auto mcf = stack_of("505.mcf_r");
    const auto x264 = stack_of("525.x264_r");
    const auto leela = stack_of("541.leela_r");
    std::printf("qualitative checks against the paper's narrative:\n");
    std::printf("  505.mcf_r memory share %.0f%% (paper: lowest IPC "
                "from cache misses)\n",
                100.0 * mcf.memory / mcf.total());
    std::printf("  525.x264_r base share %.0f%% (paper: highest IPC, "
                "compute-bound)\n",
                100.0 * x264.base / x264.total());
    std::printf("  541.leela_r branch share %.0f%% (paper: worst "
                "mispredict rate)\n",
                100.0 * leela.branch / leela.total());
    return 0;
}
