/**
 * @file
 * Robustness-toolchain throughput: times `spec17 merge` fusing the
 * shard journals of one campaign back into the canonical journal, and
 * the fsck scan lane that re-verifies the merged file. The campaign
 * is synthesized with the journal.hh primitives at realistic record
 * width, so the bench measures the toolchain (hash verification,
 * round-robin placement, atomic rewrite), not the simulator. The
 * merged bytes are checked against a directly rendered canonical
 * journal -- the golden byte-identity contract measured, not assumed
 * -- and a machine-readable BENCH_merge.json is written for CI trend
 * tracking.
 *
 * Flags:
 *   --records=N  canonical records in the campaign (default 20,000)
 *   --shards=N   shard journals to fuse (default 8)
 *   --repeats=N  timed repetitions per lane, best wall time kept
 *                (default 5)
 *   --tmpdir=P   directory for the scratch journals (default /tmp)
 *   --out=PATH   JSON output path (default BENCH_merge.json)
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "suite/journal.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace spec17;

namespace {

struct BenchOptions
{
    std::size_t records = 20'000;
    unsigned shards = 8;
    unsigned repeats = 5;
    std::string tmpDir = "/tmp";
    std::string outPath = "BENCH_merge.json";
};

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--records=", 0) == 0) {
            options.records = std::stoull(arg.substr(10));
        } else if (arg.rfind("--shards=", 0) == 0) {
            options.shards =
                static_cast<unsigned>(std::stoul(arg.substr(9)));
        } else if (arg.rfind("--repeats=", 0) == 0) {
            options.repeats =
                static_cast<unsigned>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--tmpdir=", 0) == 0) {
            options.tmpDir = arg.substr(9);
        } else if (arg.rfind("--out=", 0) == 0) {
            options.outPath = arg.substr(6);
        } else {
            SPEC17_FATAL("unknown argument '", arg,
                         "' (want --records=N --shards=N --repeats=N"
                         " --tmpdir=P --out=PATH)");
        }
    }
    if (options.records == 0)
        options.records = 1;
    if (options.shards == 0)
        options.shards = 1;
    if (options.repeats == 0)
        options.repeats = 1;
    return options;
}

/** Column header matching the width of a real sweep journal: the
 *  fixed result fields plus one column per hardware counter. */
std::string
columnHeader(std::size_t counter_columns)
{
    std::string header =
        "name,generation,input,errored,attempts,failures,"
        "wall_cycles,seconds";
    for (std::size_t c = 0; c < counter_columns; ++c)
        header += ",counter_" + std::to_string(c);
    return header + ",record_hash";
}

/** Deterministic record payload for canonical index @p index, sized
 *  like a real pair row (a name cell plus ~30 numeric cells). */
std::string
payloadFor(std::size_t index, std::size_t counter_columns)
{
    std::ostringstream payload;
    payload << 600 + index % 100 << ".bench_" << index
            << "-ref,cpu2006,test,0,1,0,"
            << 1'000'000 + index * 977 << ","
            << 0.25 + double(index % 1000) / 4096.0;
    std::uint64_t value = suite::fnv1a(std::to_string(index));
    for (std::size_t c = 0; c < counter_columns; ++c) {
        value = suite::fnv1a("next", value);
        payload << "," << value % 10'000'000;
    }
    return payload.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    if (!out)
        SPEC17_FATAL("cannot write ", path);
    out << content;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SPEC17_FATAL("cannot read back ", path);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

/** Best wall time of @p body over @p repeats runs. */
template <typename Body>
double
bestOf(unsigned repeats, Body &&body)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto start = std::chrono::steady_clock::now();
        body();
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (r == 0 || wall_s < best)
            best = wall_s;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bench = parseArgs(argc, argv);
    constexpr std::size_t kCounterColumns = 30;

    // Synthesize one campaign: canonical records 0..N-1, distributed
    // round-robin across the shard journals exactly as a sharded
    // sweep writes them (record j of shard K/N holds canonical index
    // j*N + K-1).
    suite::JournalHeader header;
    header.configFingerprint =
        suite::hex16(suite::fnv1a("bench_merge config key"));
    header.pairsDigest =
        suite::hex16(suite::fnv1a("bench_merge pair set"));
    const std::string columns = columnHeader(kCounterColumns);

    std::vector<std::string> canonical_records(bench.records);
    for (std::size_t i = 0; i < bench.records; ++i) {
        const std::string payload = payloadFor(i, kCounterColumns);
        canonical_records[i] =
            payload + ","
            + suite::recordHash(header.configFingerprint, payload);
    }

    const std::string base =
        bench.tmpDir + "/spec17_bench_merge";
    std::vector<std::string> shard_paths;
    std::size_t shard_bytes = 0;
    for (unsigned k = 1; k <= bench.shards; ++k) {
        suite::JournalHeader shard_header = header;
        shard_header.shardIndex = k;
        shard_header.shardCount = bench.shards;
        std::string content =
            shard_header.serialize() + "\n" + columns + "\n";
        for (std::size_t i = k - 1; i < bench.records;
             i += bench.shards)
            content += canonical_records[i] + "\n";
        const std::string path = base + ".shard" + std::to_string(k)
            + "of" + std::to_string(bench.shards) + ".csv";
        writeFile(path, content);
        shard_paths.push_back(path);
        shard_bytes += content.size();
    }

    // The canonical journal the merge must reproduce byte-for-byte.
    std::string expected = header.serialize() + "\n" + columns + "\n";
    for (const auto &record : canonical_records)
        expected += record + "\n";

    std::printf("bench_merge: %zu records across %u shards "
                "(%.1f MB), best of %u repeats per lane\n\n",
                bench.records, bench.shards,
                double(shard_bytes) / 1e6, bench.repeats);

    const std::string merged_path = base + ".merged.csv";
    suite::MergeOutcome outcome;
    const double merge_s = bestOf(bench.repeats, [&] {
        outcome = suite::mergeJournals(shard_paths, merged_path);
        if (!outcome.ok)
            SPEC17_FATAL("merge failed: ", outcome.error);
    });

    suite::JournalScan scan;
    const double fsck_s = bestOf(bench.repeats, [&] {
        scan = suite::scanJournal(merged_path);
    });

    const bool byte_identical = fileBytes(merged_path) == expected;
    const double merged_mb = double(expected.size()) / 1e6;

    TextTable table({"lane", "wall s", "records/s", "MB/s"});
    table.addRow({"merge " + std::to_string(bench.shards) + " shards",
                  fmtDouble(merge_s, 4),
                  fmtDouble(double(bench.records) / merge_s, 0),
                  fmtDouble(merged_mb / merge_s, 1)});
    table.addRow({"fsck scan", fmtDouble(fsck_s, 4),
                  fmtDouble(double(bench.records) / fsck_s, 0),
                  fmtDouble(merged_mb / fsck_s, 1)});
    std::ostringstream rendered;
    table.render(rendered);
    std::printf("%s\n", rendered.str().c_str());

    // Committed via temp+rename like the telemetry sinks: a bench
    // interrupted mid-write can't leave a torn baseline JSON behind.
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"merge\",\n"
        << "  \"shards\": " << bench.shards << ",\n"
        << "  \"records\": " << bench.records << ",\n"
        << "  \"journal_bytes\": " << expected.size() << ",\n"
        << "  \"repeats\": " << bench.repeats << ",\n"
        << "  \"merge\": {\"wall_s\": " << merge_s
        << ", \"records_per_s\": " << double(bench.records) / merge_s
        << ", \"mb_per_s\": " << merged_mb / merge_s << "},\n"
        << "  \"fsck_scan\": {\"wall_s\": " << fsck_s
        << ", \"records_per_s\": " << double(bench.records) / fsck_s
        << ", \"mb_per_s\": " << merged_mb / fsck_s << "},\n"
        << "  \"byte_identical\": "
        << (byte_identical ? "true" : "false") << "\n"
        << "}\n";
    if (!writeFileAtomic(bench.outPath, out.str()))
        SPEC17_FATAL("cannot write ", bench.outPath);
    std::printf("wrote %s\n", bench.outPath.c_str());

    for (const auto &path : shard_paths)
        std::remove(path.c_str());
    std::remove(merged_path.c_str());

    if (!byte_identical) {
        std::fprintf(stderr,
                     "FAIL: merged journal is not byte-identical to "
                     "the canonical rendering -- the shard round-trip "
                     "contract is broken\n");
        return 1;
    }
    if (outcome.recordsWritten != bench.records || !scan.clean()) {
        std::fprintf(stderr,
                     "FAIL: merged journal lost records or does not "
                     "verify clean under fsck\n");
        return 1;
    }
    std::printf("reading: records/s is canonical records fused (or "
                "re-verified) per second;\n'byte_identical' confirms "
                "the merged shards reproduce the unsharded journal "
                "exactly\n(the JSON mirrors this table for CI trend "
                "tracking).\n");
    return 0;
}
