/**
 * @file
 * Regenerates Fig. 3: branch share (% of instructions) and the
 * conditional share of branches per CPU2017 pair.
 */

#include "bench/common.hh"
#include "util/logging.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 3: branch characteristics (ref)",
                       options);
    core::Characterizer session(options);
    bench::renderPerPairFigure(
        session, {{"% branches", &core::Metrics::branchPct},
                  {"% conditional", &core::Metrics::condBranchPct}});

    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));
    double br = 0.0, cond = 0.0;
    for (const auto &m : metrics) {
        br += m.branchPct;
        cond += m.condBranchPct;
    }
    bench::paperNote("CPU17 avg % branches", 14.743,
                     br / double(metrics.size()));
    bench::paperNote("conditional share of branches (%)", 78.662,
                     cond / double(metrics.size()));
    auto find = [&](const std::string &name) -> const core::Metrics & {
        for (const auto &m : metrics) {
            if (m.name.rfind(name, 0) == 0)
                return m;
        }
        SPEC17_PANIC("pair not found: ", name);
    };
    bench::paperNote("505.mcf_r % branches (highest)", 31.277,
                     find("505.mcf_r").branchPct);
    bench::paperNote("605.mcf_s % branches (highest)", 32.939,
                     find("605.mcf_s").branchPct);
    bench::paperNote("519.lbm_r % branches (lowest)", 1.198,
                     find("519.lbm_r").branchPct);
    bench::paperNote("619.lbm_s % branches (lowest)", 3.646,
                     find("619.lbm_s").branchPct);
    return 0;
}
