/**
 * @file
 * Regenerates Fig. 6: branch mispredict rates per CPU2017 pair.
 */

#include "bench/common.hh"
#include "util/logging.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 6: branch mispredict rates (ref)",
                       options);
    core::Characterizer session(options);
    bench::renderPerPairFigure(
        session,
        {{"mispredict %", &core::Metrics::mispredictPct}});

    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));
    double all = 0.0, rate = 0.0, speed = 0.0;
    int rate_n = 0, speed_n = 0;
    for (const auto &m : metrics) {
        all += m.mispredictPct;
        if (workloads::isSpeedSuite(m.suite)) {
            speed += m.mispredictPct;
            ++speed_n;
        } else {
            rate += m.mispredictPct;
            ++rate_n;
        }
    }
    bench::paperNote("CPU17 avg mispredict %", 2.198,
                     all / double(metrics.size()));
    bench::paperNote("rate avg mispredict %", 2.199, rate / rate_n);
    bench::paperNote("speed avg mispredict %", 2.196, speed / speed_n);
    auto find = [&](const std::string &name) -> const core::Metrics & {
        for (const auto &m : metrics) {
            if (m.name.rfind(name, 0) == 0)
                return m;
        }
        SPEC17_PANIC("pair not found: ", name);
    };
    bench::paperNote("541.leela_r mispredict % (worst)", 8.656,
                     find("541.leela_r").mispredictPct);
    bench::paperNote("641.leela_s mispredict % (worst)", 8.636,
                     find("641.leela_s").mispredictPct);
    return 0;
}
