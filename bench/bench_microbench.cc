/**
 * @file
 * Google-benchmark micro-benchmarks of the framework's hot paths:
 * cache access, branch prediction, full-simulator throughput, PCA,
 * and agglomerative clustering at the study's problem sizes. These
 * guard the "fast enough to sweep 194 pairs" property the result
 * cache and benches rely on.
 */

#include <benchmark/benchmark.h>

#include "cluster/hierarchical.hh"
#include "sim/simulator.hh"
#include "stats/pca.hh"
#include "trace/synthetic.hh"
#include "util/random.hh"

using namespace spec17;

namespace {

void
BM_CacheAccessL1Resident(benchmark::State &state)
{
    sim::CacheConfig config;
    config.sizeBytes = 32 * 1024;
    config.assoc = 8;
    sim::SetAssocCache cache(config);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBounded(16 * 1024), false));
    }
}
BENCHMARK(BM_CacheAccessL1Resident);

void
BM_CacheAccessThrashing(benchmark::State &state)
{
    sim::CacheConfig config;
    config.sizeBytes = 32 * 1024;
    config.assoc = 8;
    sim::SetAssocCache cache(config);
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(rng.nextBounded(64 * 1024 * 1024), false));
    }
}
BENCHMARK(BM_CacheAccessThrashing);

void
BM_TournamentPredictor(benchmark::State &state)
{
    sim::TournamentPredictor predictor;
    Rng rng(2);
    std::uint64_t pc = 0x400000;
    for (auto _ : state) {
        const bool taken = rng.nextBernoulli(0.7);
        benchmark::DoNotOptimize(predictor.predict(pc));
        predictor.update(pc, taken);
        pc = 0x400000 + rng.nextBounded(4096) * 4;
    }
}
BENCHMARK(BM_TournamentPredictor);

void
BM_SyntheticTraceGeneration(benchmark::State &state)
{
    trace::SyntheticTraceParams params;
    params.numOps = ~std::uint64_t(0) >> 1;
    params.regions = {
        {trace::AccessPattern::Random, 1 << 20, 64, 1.0, 1.0},
    };
    trace::SyntheticTraceGenerator gen(params);
    isa::MicroOp op;
    for (auto _ : state) {
        gen.next(op);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_SyntheticTraceGeneration);

void
BM_SimulatorThroughput(benchmark::State &state)
{
    trace::SyntheticTraceParams params;
    params.numOps = ~std::uint64_t(0) >> 1;
    params.regions = {
        {trace::AccessPattern::Random, 16 * 1024, 64, 0.9, 0.9},
        {trace::AccessPattern::Random, 8 << 20, 64, 0.1, 0.1},
    };
    trace::SyntheticTraceGenerator gen(params);
    sim::CpuSimulator simulator(
        sim::SystemConfig::haswellXeonE52650Lv3());
    for (auto _ : state)
        simulator.step(gen, 1024);
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_SimulatorThroughput);

void
BM_PcaStudySized(benchmark::State &state)
{
    // The study's PCA: 194 observations x 20 characteristics.
    Rng rng(3);
    stats::Matrix data(194, 20);
    for (std::size_t r = 0; r < data.rows(); ++r)
        for (std::size_t c = 0; c < data.cols(); ++c)
            data.at(r, c) = rng.nextGaussian();
    for (auto _ : state) {
        const auto pca = stats::computePca(data);
        benchmark::DoNotOptimize(pca.eigenvalues.front());
    }
}
BENCHMARK(BM_PcaStudySized);

void
BM_AgglomerativeClustering(benchmark::State &state)
{
    // Speed-set sized clustering: ~64 points in 4-D PC space.
    Rng rng(4);
    stats::Matrix points(64, 4);
    for (std::size_t r = 0; r < points.rows(); ++r)
        for (std::size_t c = 0; c < points.cols(); ++c)
            points.at(r, c) = rng.nextGaussian();
    for (auto _ : state) {
        const auto dendrogram =
            cluster::agglomerate(points, cluster::Linkage::Average);
        benchmark::DoNotOptimize(dendrogram.steps().back().distance);
    }
}
BENCHMARK(BM_AgglomerativeClustering);

} // namespace

BENCHMARK_MAIN();
