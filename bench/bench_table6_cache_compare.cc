/**
 * @file
 * Regenerates Table VI: L1/L2/L3 load miss-rate comparison of the
 * CPU2017 and CPU2006 suites.
 */

#include "bench/common.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table VI: cache miss rate comparison of CPU17 and CPU06",
        options);
    core::Characterizer session(options);
    bench::renderCompare(
        session,
        {
            {"L1 Miss Rate (%)",
             &core::Metrics::l1MissPct,
             {{4.129, 6.390},
              {3.865, 4.489},
              {2.533, 1.521},
              {3.023, 4.703},
              {3.193, 4.344},
              {3.424, 4.622}}},
            {"L2 Miss Rate (%)",
             &core::Metrics::l2MissPct,
             {{40.854, 19.760},
              {38.614, 20.820},
              {31.914, 20.227},
              {26.971, 18.660},
              {35.746, 20.511},
              {32.515, 20.557}}},
            {"L3 Miss Rate (%)",
             &core::Metrics::l3MissPct,
             {{12.152, 15.044},
              {15.298, 19.456},
              {14.041, 16.332},
              {13.146, 12.638},
              {13.259, 15.839},
              {14.171, 16.281}}},
        });
    return 0;
}
