/**
 * @file
 * Extension experiment: the power/energy axis. SPEC CPU2017 ships an
 * optional power metric that the paper mentions (Section II) but
 * cannot evaluate without a power meter; the simulated machine can.
 * Reports per-application energy-per-instruction, average power, and
 * energy-delay product for the CPU2017 ref pairs, and checks the
 * structural expectations (memory-bound pairs burn DRAM energy and
 * stall leakage; compute-bound pairs are core-dominated).
 */

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "sim/energy.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Extension: energy characterization (the CPU2017 power "
        "metric, simulated)",
        options);
    core::Characterizer session(options);
    const auto &results = session.results(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref);

    struct Row
    {
        std::string name;
        double epi = 0.0;     // nJ / instruction
        double watts = 0.0;   // sampled-average power
        double dram_share = 0.0;
        double static_share = 0.0;
    };
    std::vector<Row> rows;
    for (const auto &result : results) {
        if (result.errored)
            continue;
        // Leakage accrues on every active core-cycle: the summed
        // cpu_clk_unhalted counter (all threads), not wall cycles.
        const auto energy = sim::computeEnergy(
            result.counters,
            double(result.counters.get(
                counters::PerfEvent::CpuClkUnhaltedRefTsc)));
        const double instr = double(result.counters.get(
            counters::PerfEvent::InstRetiredAny));
        const double seconds = result.wallCycles
            / (options.runner.system.core.frequencyGHz * 1e9);
        Row row;
        row.name = result.name;
        row.epi = energy.epiNj(instr);
        row.watts = energy.watts(seconds);
        row.dram_share = energy.dramJ / energy.totalJ();
        row.static_share = energy.staticJ / energy.totalJ();
        rows.push_back(row);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.epi > b.epi; });

    TextTable table({"pair", "EPI (nJ)", "avg W", "DRAM %",
                     "static %", ""});
    const double epi_max = rows.front().epi;
    for (const auto &row : rows) {
        table.addRow({row.name, fmtDouble(row.epi, 2),
                      fmtDouble(row.watts, 2),
                      fmtDouble(100.0 * row.dram_share, 1),
                      fmtDouble(100.0 * row.static_share, 1),
                      bench::asciiBar(row.epi, epi_max, 24)});
    }
    std::ostringstream os;
    table.render(os);
    std::printf("%s\n", os.str().c_str());

    auto epi_of = [&](const std::string &prefix) {
        for (const auto &row : rows) {
            if (row.name.rfind(prefix, 0) == 0)
                return row.epi;
        }
        return 0.0;
    };
    std::printf("structural checks:\n");
    std::printf("  619.lbm_s EPI %.2f nJ vs 625.x264_s %.2f nJ "
                "(memory wall costs energy: %.1fx)\n",
                epi_of("619.lbm_s"), epi_of("625.x264_s"),
                epi_of("619.lbm_s") / epi_of("625.x264_s"));
    std::printf("  505.mcf_r EPI %.2f nJ vs 548.exchange2_r %.2f nJ "
                "(%.1fx)\n",
                epi_of("505.mcf_r"), epi_of("548.exchange2_r"),
                epi_of("505.mcf_r") / epi_of("548.exchange2_r"));
    return 0;
}
