/**
 * @file
 * Ablation bench (ours, beyond the paper): sensitivity of the
 * suggested subset to methodology choices the paper fixed silently --
 * the clustering linkage, the retained-variance threshold, and the
 * forced cluster count. Reports how stable the subset composition
 * and the time saving are under each variation.
 */

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

#include "bench/common.hh"
#include "cluster/kmeans.hh"
#include "core/subset.hh"
#include "util/table.hh"

using namespace spec17;

namespace {

std::set<std::string>
membersOf(const core::SubsetSuggestion &subset)
{
    std::set<std::string> members;
    for (const auto &rep : subset.representatives)
        members.insert(rep.name);
    return members;
}

double
overlapPct(const std::set<std::string> &a, const std::set<std::string> &b)
{
    if (a.empty())
        return 0.0;
    std::size_t common = 0;
    for (const auto &name : a)
        common += b.count(name);
    return 100.0 * double(common)
        / double(std::max(a.size(), b.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Ablation: clustering methodology sensitivity (rate pairs, "
        "ref)",
        options);
    core::Characterizer session(options);

    // Baseline: the paper-like configuration.
    core::RedundancyOptions base_options;
    const auto base_analysis =
        session.redundancyFor(false, base_options);
    const auto base_subset = core::suggestSubset(base_analysis);
    const auto base_members = membersOf(base_subset);
    std::printf("baseline: average linkage, 76%% variance -> %zu "
                "clusters, %.1f%% time saving\n\n",
                base_subset.numClusters(), base_subset.savingPct());

    std::printf("--- linkage sensitivity ---\n");
    TextTable linkage_table({"linkage", "clusters", "saving %",
                             "subset overlap vs baseline %"});
    for (cluster::Linkage linkage :
         {cluster::Linkage::Single, cluster::Linkage::Complete,
          cluster::Linkage::Average, cluster::Linkage::Ward}) {
        core::RedundancyOptions ro;
        ro.linkage = linkage;
        const auto analysis = session.redundancyFor(false, ro);
        const auto subset = core::suggestSubset(analysis);
        linkage_table.addRow(
            {cluster::linkageName(linkage),
             std::to_string(subset.numClusters()),
             fmtDouble(subset.savingPct(), 1),
             fmtDouble(overlapPct(membersOf(subset), base_members),
                       1)});
    }
    std::ostringstream os1;
    linkage_table.render(os1);
    std::printf("%s\n", os1.str().c_str());

    std::printf("--- retained-variance sensitivity ---\n");
    TextTable variance_table({"variance target", "PCs", "clusters",
                              "saving %", "overlap vs baseline %"});
    for (double fraction : {0.6, 0.76, 0.85, 0.95}) {
        core::RedundancyOptions ro;
        ro.varianceFraction = fraction;
        const auto analysis = session.redundancyFor(false, ro);
        const auto subset = core::suggestSubset(analysis);
        variance_table.addRow(
            {fmtDouble(fraction, 2),
             std::to_string(analysis.numComponents),
             std::to_string(subset.numClusters()),
             fmtDouble(subset.savingPct(), 1),
             fmtDouble(overlapPct(membersOf(subset), base_members),
                       1)});
    }
    std::ostringstream os2;
    variance_table.render(os2);
    std::printf("%s\n", os2.str().c_str());

    std::printf("--- forced cluster count (paper picks 12 for rate) "
                "---\n");
    TextTable count_table({"clusters", "SSE", "saving %",
                           "silhouette"});
    for (std::size_t k : {6u, 9u, 12u, 15u, 18u, 24u}) {
        const auto subset = core::suggestSubset(base_analysis, k);
        const double silhouette = cluster::silhouetteScore(
            base_analysis.pcScores, base_analysis.dendrogram.cut(k));
        count_table.addRow({std::to_string(k),
                            fmtDouble(subset.sweep[subset.chosen].sse,
                                      2),
                            fmtDouble(subset.savingPct(), 1),
                            fmtDouble(silhouette, 3)});
    }
    std::ostringstream os3;
    count_table.render(os3);
    std::printf("%s\n", os3.str().c_str());

    std::printf("--- algorithm family: hierarchical vs k-means ---\n");
    TextTable algo_table({"k", "hierarchical SSE", "k-means SSE",
                          "label agreement %"});
    for (std::size_t k : {8u, 12u, 16u}) {
        const auto h_labels = base_analysis.dendrogram.cut(k);
        const double h_sse = cluster::sumSquaredError(
            base_analysis.pcScores, h_labels);
        const auto km =
            cluster::kMeans(base_analysis.pcScores, k, 0x5bec17);
        // Pairwise co-clustering agreement (Rand-index style): do the
        // two algorithms put each pair of workloads together or apart
        // consistently?
        std::size_t agree = 0, total = 0;
        for (std::size_t a = 0; a < h_labels.size(); ++a) {
            for (std::size_t b = a + 1; b < h_labels.size(); ++b) {
                const bool together_h = h_labels[a] == h_labels[b];
                const bool together_k =
                    km.labels[a] == km.labels[b];
                agree += together_h == together_k;
                ++total;
            }
        }
        algo_table.addRow({std::to_string(k), fmtDouble(h_sse, 2),
                           fmtDouble(km.sse, 2),
                           fmtDouble(100.0 * agree / total, 1)});
    }
    std::ostringstream os4;
    algo_table.render(os4);
    std::printf("%s", os4.str().c_str());
    std::printf("high pairwise agreement means the subset reflects "
                "the data, not the algorithm.\n");
    return 0;
}
