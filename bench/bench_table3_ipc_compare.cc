/**
 * @file
 * Regenerates Table III: IPC comparison of the CPU2017 and CPU2006
 * suites (ref inputs).
 */

#include "bench/common.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Table III: IPC comparison of CPU17 and CPU06",
                       options);
    core::Characterizer session(options);
    bench::renderCompare(
        session,
        {{"IPC",
          &core::Metrics::ipc,
          {{1.762, 0.707},
           {1.679, 0.640},
           {1.815, 0.706},
           {1.255, 0.636},
           {1.784, 0.707},
           {1.457, 0.672}}}});
    return 0;
}
