/**
 * @file
 * Extension experiment (the paper's future work): phase behaviour of
 * CPU2017-like workloads. Builds a multi-phase program in the mould
 * of 502.gcc (parse -> optimize -> allocate/spill), detects its
 * phases, and shows how well simulating only the phase
 * representatives predicts whole-program IPC -- the motivation the
 * paper gives for phase-based optimization research.
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "core/phase.hh"
#include "trace/phased.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"

using namespace spec17;

namespace {

std::shared_ptr<trace::TraceSource>
segment(std::uint64_t ops, std::uint64_t seed, double load_frac,
        double branch_frac, std::uint64_t region_bytes,
        trace::AccessPattern pattern, double hard_branches)
{
    trace::SyntheticTraceParams params;
    params.numOps = ops;
    params.seed = seed;
    params.loadFrac = load_frac;
    params.storeFrac = 0.1;
    params.branchFrac = branch_frac;
    params.hardBranchFrac = hard_branches;
    params.regions = {{pattern, region_bytes, 64, 1.0, 1.0}};
    return std::make_shared<trace::SyntheticTraceGenerator>(params);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Extension: phase analysis (the paper's future-work "
        "direction)",
        options);

    // A gcc-like program: branchy parse over a small heap, regular
    // optimization sweeps, then pointer-heavy allocation, then a
    // second optimization pass.
    trace::PhasedTrace program({
        segment(500000, 11, 0.24, 0.24, 256 * 1024,
                trace::AccessPattern::Random, 0.10),       // parse
        segment(700000, 12, 0.30, 0.08, 1 * 1024 * 1024,
                trace::AccessPattern::Strided, 0.01),      // optimize
        segment(400000, 13, 0.35, 0.20, 48 * 1024 * 1024,
                trace::AccessPattern::PointerChase, 0.08), // allocate
        segment(400000, 14, 0.30, 0.08, 1 * 1024 * 1024,
                trace::AccessPattern::Strided, 0.01),      // optimize
    });

    core::PhaseOptions phase_options;
    phase_options.intervalOps = 100'000;
    phase_options.warmupOps = 100'000;
    const core::PhaseAnalysis analysis = core::analyzePhases(
        program, options.runner.system, phase_options);

    std::printf("detected %zu phases over %zu intervals of %llu "
                "uops\n\n",
                analysis.phases.size(), analysis.intervals.size(),
                static_cast<unsigned long long>(
                    phase_options.intervalOps));

    TextTable timeline({"interval", "first uop", "IPC", "phase", ""});
    double ipc_max = 0.0;
    for (const auto &interval : analysis.intervals)
        ipc_max = std::max(ipc_max, interval.ipc);
    for (std::size_t i = 0; i < analysis.intervals.size(); ++i) {
        const auto &interval = analysis.intervals[i];
        timeline.addRow({std::to_string(i),
                         std::to_string(interval.firstOp),
                         fmtDouble(interval.ipc, 3),
                         std::to_string(analysis.labels[i]),
                         bench::asciiBar(interval.ipc, ipc_max, 24)});
    }
    std::ostringstream os;
    timeline.render(os);
    std::printf("%s\n", os.str().c_str());

    TextTable phases({"phase", "weight %", "mean IPC",
                      "representative interval"});
    for (const auto &phase : analysis.phases) {
        phases.addRow({std::to_string(phase.id),
                       fmtDouble(100.0 * phase.weight, 1),
                       fmtDouble(phase.meanIpc, 3),
                       std::to_string(phase.representative)});
    }
    std::ostringstream os2;
    phases.render(os2);
    std::printf("%s\n", os2.str().c_str());

    const double full = analysis.fullIpc();
    const double sampled = analysis.sampledIpcEstimate();
    std::printf("whole-run IPC %.3f vs representative-sampled "
                "estimate %.3f (error %.2f%%)\n",
                full, sampled, 100.0 * std::abs(sampled - full) / full);
    std::printf("simulation cost: %zu of %zu intervals (%.1f%% of "
                "the run)\n",
                analysis.phases.size(), analysis.intervals.size(),
                100.0 * double(analysis.phases.size())
                    / double(analysis.intervals.size()));
    return 0;
}
