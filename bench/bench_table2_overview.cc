/**
 * @file
 * Regenerates Table II: average instruction count, IPC and execution
 * time per mini-suite and input size, over all CPU2017
 * application-input pairs.
 */

#include <iostream>

#include "bench/common.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table II: CPU17 benchmarks' average performance "
        "characteristics",
        options);
    core::Characterizer session(options);

    TextTable table({"Suite", "Input Size", "Instr Count (B)", "IPC",
                     "Execution Time (s)"});
    // Paper values for the ref rows, for the side-by-side note.
    const double paper_ipc[4][3] = {
        {1.716, 1.765, 1.724}, // rate int: test, train, ref
        {1.692, 1.651, 1.635}, // rate fp
        {1.698, 1.739, 1.635}, // speed int
        {0.681, 0.710, 0.706}, // speed fp
    };
    const double paper_instr[4][3] = {
        {76.922, 230.553, 1751.516},
        {47.431, 357.233, 2291.092},
        {77.078, 232.961, 2265.182},
        {58.825, 477.316, 21880.115},
    };

    const workloads::SuiteKind kinds[] = {
        workloads::SuiteKind::RateInt, workloads::SuiteKind::RateFp,
        workloads::SuiteKind::SpeedInt, workloads::SuiteKind::SpeedFp};
    for (int k = 0; k < 4; ++k) {
        for (int s = 0; s < 3; ++s) {
            const auto size = workloads::kAllInputSizes[s];
            const auto metrics = core::averageByApplication(
                core::bySuite(core::withoutErrored(session.metrics(
                                  workloads::SuiteGeneration::Cpu2017,
                                  size)),
                              kinds[k]));
            const auto agg = core::aggregate(metrics);
            table.addRow({workloads::suiteKindName(kinds[k]),
                          workloads::inputSizeName(size),
                          fmtDouble(agg.meanInstrBillions, 3),
                          fmtDouble(agg.ipc.mean, 3),
                          fmtDouble(agg.meanSeconds, 3)});
            bench::paperNote(
                workloads::suiteKindName(kinds[k]) + " "
                    + workloads::inputSizeName(size) + " IPC",
                paper_ipc[k][s], agg.ipc.mean);
            bench::paperNote(
                workloads::suiteKindName(kinds[k]) + " "
                    + workloads::inputSizeName(size) + " instr (B)",
                paper_instr[k][s], agg.meanInstrBillions);
        }
    }
    std::cout << "\n";
    table.render(std::cout);
    return 0;
}
