/**
 * @file
 * Regenerates Table X: the suggested representative subset of the
 * CPU2017 suite, with the execution-time saving vs the full
 * mini-suites (paper: 12 rate pairs saving 57.116%, 10 speed pairs
 * saving 62.052%).
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "core/subset.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Table X: suggested subset of CPU17 benchmarks",
                       options);
    core::Characterizer session(options);

    for (int panel = 0; panel < 2; ++panel) {
        const bool speed = panel == 1;
        const auto analysis = session.redundancyFor(speed);
        const auto subset = core::suggestSubset(analysis);

        std::printf("%s subset (%zu representatives):\n",
                    speed ? "speed" : "rate", subset.numClusters());
        TextTable table({"representative", "time (s)", "covers"});
        for (const auto &rep : subset.representatives) {
            std::string covers;
            for (std::size_t i = 0; i < rep.covers.size(); ++i) {
                if (i)
                    covers += ", ";
                covers += rep.covers[i];
            }
            table.addRow({rep.name, fmtDouble(rep.seconds, 1),
                          covers.empty() ? "(itself only)" : covers});
        }
        std::ostringstream os;
        table.render(os);
        std::printf("%s", os.str().c_str());
        std::printf("subset time %.1fs of full %.1fs\n",
                    subset.subsetSeconds, subset.fullSeconds);
        bench::paperNote(speed ? "speed % time saving"
                               : "rate % time saving",
                         speed ? 62.052 : 57.116, subset.savingPct());
        bench::paperNote(speed ? "speed subset size"
                               : "rate subset size",
                         speed ? 10.0 : 12.0,
                         double(subset.numClusters()));
        std::printf("\n");
    }

    // Paper's representative-selection example: within the cluster
    // {638.imagick_s, 644.nab_s, 628.pop2_s, 621.wrf_s}, 644.nab_s
    // wins on execution time.
    std::printf("paper's example cluster members' times "
                "(the shortest would represent):\n");
    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));
    for (const char *name : {"638.imagick_s", "644.nab_s", "628.pop2_s",
                             "621.wrf_s"}) {
        for (const auto &m : metrics) {
            if (m.name == name)
                std::printf("  %-16s %10.1f s\n", name, m.seconds);
        }
    }
    return 0;
}
