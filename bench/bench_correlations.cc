/**
 * @file
 * Regenerates the Section IV correlation observations: Pearson
 * correlations of footprint and per-level miss rates against IPC
 * across the CPU2017 ref pairs.
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Section IV correlations: counters vs IPC across CPU17 ref "
        "pairs",
        options);
    core::Characterizer session(options);
    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));

    struct Row
    {
        const char *label;
        double core::Metrics::*field;
        double paper;
    };
    const Row rows[] = {
        {"RSS", &core::Metrics::rssGiB, -0.465},
        {"VSZ", &core::Metrics::vszGiB, -0.510},
        {"L1 load miss rate", &core::Metrics::l1MissPct, -0.282},
        {"L2 load miss rate", &core::Metrics::l2MissPct, -0.479},
        {"L3 load miss rate", &core::Metrics::l3MissPct, -0.137},
    };

    TextTable table({"quantity", "corr with IPC (paper)",
                     "corr with IPC (measured)"});
    for (const Row &row : rows) {
        const double measured =
            core::correlationWithIpc(metrics, row.field);
        table.addRow({row.label, fmtDouble(row.paper, 3),
                      fmtDouble(measured, 3)});
        bench::paperNote(std::string("corr(") + row.label + ", IPC)",
                         row.paper, measured);
    }
    std::ostringstream os;
    table.render(os);
    std::printf("\n%s", os.str().c_str());
    return 0;
}
