/**
 * @file
 * Extension experiment: batched hot-path throughput. Times the same
 * cpu2006 test-input sweep on the per-op reference lane
 * (--unbatched-stepping) and on the batched fast lane at several
 * batch sizes, verifies that every configuration produced identical
 * counters (the golden contract measured, not assumed), and writes a
 * machine-readable BENCH_hot_path.json for CI trend tracking.
 *
 * Flags (separate from the common bench flags; this binary times the
 * runner rather than regenerating a paper artifact):
 *   --pairs=N    only the first N pairs of the sweep (0 = all)
 *   --sample=N   micro-ops measured per pair (default 2,000,000)
 *   --warmup=N   micro-ops warmed per pair (default 600,000)
 *   --repeats=N  timed repetitions per lane, best wall time kept
 *                (default 3)
 *   --out=PATH   JSON output path (default BENCH_hot_path.json)
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "suite/runner.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workloads/builder.hh"

using namespace spec17;

namespace {

struct BenchOptions
{
    std::size_t pairs = 0;
    std::uint64_t sampleOps = 2'000'000;
    std::uint64_t warmupOps = 600'000;
    unsigned repeats = 3;
    std::string outPath = "BENCH_hot_path.json";
};

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--pairs=", 0) == 0) {
            options.pairs = std::stoull(arg.substr(8));
        } else if (arg.rfind("--sample=", 0) == 0) {
            options.sampleOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--warmup=", 0) == 0) {
            options.warmupOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--repeats=", 0) == 0) {
            options.repeats = static_cast<unsigned>(
                std::stoul(arg.substr(10)));
        } else if (arg.rfind("--out=", 0) == 0) {
            options.outPath = arg.substr(6);
        } else {
            SPEC17_FATAL("unknown argument '", arg,
                         "' (want --pairs=N --sample=N --warmup=N"
                         " --repeats=N --out=PATH)");
        }
    }
    if (options.repeats == 0)
        options.repeats = 1;
    return options;
}

/** One lane's measurement: best wall time over the repeats. */
struct LaneTiming
{
    double wallSeconds = 0.0;
    std::vector<suite::PairResult> results;
};

/** Runs one sweep and folds its wall time into the lane's best.
 *  Repeats for the different lanes are interleaved round-robin by the
 *  caller, so a transient load spike on a shared host degrades every
 *  lane's r-th repeat alike instead of silently skewing one lane's
 *  whole block -- the best-of-N ratio stays meaningful under noise. */
void
timeLaneOnce(const suite::RunnerOptions &options,
             const std::vector<workloads::AppInputPair> &pairs,
             LaneTiming &timing)
{
    const suite::SuiteRunner runner(options);
    const auto start = std::chrono::steady_clock::now();
    auto results = runner.runPairs(pairs);
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    if (timing.results.empty() || wall_s < timing.wallSeconds) {
        timing.wallSeconds = wall_s;
        timing.results = std::move(results);
    }
}

LaneTiming
timeLane(const suite::RunnerOptions &options,
         const std::vector<workloads::AppInputPair> &pairs,
         unsigned repeats)
{
    LaneTiming timing;
    for (unsigned r = 0; r < repeats; ++r)
        timeLaneOnce(options, pairs, timing);
    return timing;
}

/** True when both sweeps agree on every counter of every pair. */
bool
identicalResults(const std::vector<suite::PairResult> &a,
                 const std::vector<suite::PairResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name || a[i].errored != b[i].errored
            || a[i].seconds != b[i].seconds
            || a[i].wallCycles != b[i].wallCycles)
            return false;
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            if (a[i].counters.get(event) != b[i].counters.get(event))
                return false;
        }
    }
    return true;
}

/** Simulated micro-ops one sweep executes (measured plus warmup). */
std::uint64_t
sweepOps(const std::vector<suite::PairResult> &results,
         std::uint64_t warmup_ops)
{
    std::uint64_t ops = 0;
    for (const auto &result : results) {
        if (result.errored)
            continue;
        ops += result.counters.get(
                   counters::PerfEvent::InstRetiredAny)
            + warmup_ops;
    }
    return ops;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bench = parseArgs(argc, argv);

    auto pairs = workloads::enumeratePairs(workloads::cpu2006Suite(),
                                           workloads::InputSize::Test);
    if (bench.pairs != 0 && bench.pairs < pairs.size())
        pairs.resize(bench.pairs);

    suite::RunnerOptions options;
    options.sampleOps = bench.sampleOps;
    options.warmupOps = bench.warmupOps;

    std::printf("bench_hot_path: %zu pairs, sample=%llu warmup=%llu, "
                "best of %u repeats per lane\n\n",
                pairs.size(),
                static_cast<unsigned long long>(bench.sampleOps),
                static_cast<unsigned long long>(bench.warmupOps),
                bench.repeats);

    // Throwaway warm sweep so allocator/page-cache effects hit every
    // timed lane equally.
    timeLane(options, pairs, 1);

    suite::RunnerOptions reference = options;
    reference.unbatchedStepping = true;
    const std::vector<std::uint64_t> batch_sizes{
        64, sim::CpuSimulator::kDefaultBatchOps, 1024};

    // Interleave the lanes' repeats (see timeLaneOnce).
    LaneTiming unbatched;
    std::vector<LaneTiming> batched(batch_sizes.size());
    for (unsigned r = 0; r < bench.repeats; ++r) {
        timeLaneOnce(reference, pairs, unbatched);
        for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
            suite::RunnerOptions batched_options = options;
            batched_options.batchOps = batch_sizes[i];
            timeLaneOnce(batched_options, pairs, batched[i]);
        }
    }

    const std::uint64_t total_ops =
        sweepOps(unbatched.results, bench.warmupOps);
    const double unbatched_ops_s =
        double(total_ops) / unbatched.wallSeconds;

    struct BatchedPoint
    {
        std::uint64_t batchOps;
        double wallSeconds;
        double opsPerSecond;
        double speedup;
        bool identical;
    };
    std::vector<BatchedPoint> points;
    bool all_identical = true;
    for (std::size_t i = 0; i < batch_sizes.size(); ++i) {
        const bool identical =
            identicalResults(unbatched.results, batched[i].results);
        all_identical = all_identical && identical;
        points.push_back({batch_sizes[i], batched[i].wallSeconds,
                          double(total_ops) / batched[i].wallSeconds,
                          unbatched.wallSeconds
                              / batched[i].wallSeconds,
                          identical});
    }

    TextTable table(
        {"lane", "wall s", "Mops/s", "speedup", "identical"});
    table.addRow({"unbatched", fmtDouble(unbatched.wallSeconds, 3),
                  fmtDouble(unbatched_ops_s / 1e6, 1), "1.00x",
                  "(reference)"});
    for (const auto &point : points)
        table.addRow({"batch=" + std::to_string(point.batchOps),
                      fmtDouble(point.wallSeconds, 3),
                      fmtDouble(point.opsPerSecond / 1e6, 1),
                      fmtDouble(point.speedup, 2) + "x",
                      point.identical ? "yes" : "NO"});
    std::ostringstream rendered;
    table.render(rendered);
    std::printf("%s\n", rendered.str().c_str());

    // Committed via temp+rename like the telemetry sinks: a bench
    // interrupted mid-write can't leave a torn baseline JSON behind.
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"hot_path\",\n"
        << "  \"pairs\": " << pairs.size() << ",\n"
        << "  \"sample_ops\": " << bench.sampleOps << ",\n"
        << "  \"warmup_ops\": " << bench.warmupOps << ",\n"
        << "  \"repeats\": " << bench.repeats << ",\n"
        << "  \"total_ops\": " << total_ops << ",\n"
        << "  \"unbatched\": {\"wall_s\": " << unbatched.wallSeconds
        << ", \"ops_per_s\": " << unbatched_ops_s << "},\n"
        << "  \"batched\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &point = points[i];
        out << "    {\"batch_ops\": " << point.batchOps
            << ", \"wall_s\": " << point.wallSeconds
            << ", \"ops_per_s\": " << point.opsPerSecond
            << ", \"speedup\": " << point.speedup
            << ", \"identical\": "
            << (point.identical ? "true" : "false") << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!writeFileAtomic(bench.outPath, out.str()))
        SPEC17_FATAL("cannot write ", bench.outPath);
    std::printf("wrote %s\n", bench.outPath.c_str());

    if (!all_identical) {
        std::fprintf(stderr,
                     "FAIL: batched lane diverged from the reference "
                     "lane -- the determinism contract is broken\n");
        return 1;
    }
    std::printf("reading: speedup is the wall-time ratio of the same "
                "sweep on the two lanes;\n'identical' confirms every "
                "batch size produced byte-for-byte the same "
                "counters\n(the JSON mirrors this table for CI trend "
                "tracking).\n");
    return 0;
}
