/**
 * @file
 * Extension experiment: cost of interval telemetry. Runs the same
 * small single-threaded sweep with sampling off and with
 * --sample-interval-ops=100000, timing wall clock for each, so the
 * observation-is-free claim ("sampling perturbs nothing and costs
 * little") is a measured number instead of folklore.
 */

#include <chrono>
#include <cstdio>

#include "bench/common.hh"
#include "suite/runner.hh"
#include "telemetry/sink.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace spec17;

namespace {

/** Wall-clock seconds to run @p apps once under @p options. */
double
timeSweep(const suite::RunnerOptions &options,
          const std::vector<const char *> &apps)
{
    const auto start = std::chrono::steady_clock::now();
    suite::SuiteRunner runner(options);
    for (const char *app : apps) {
        const auto result = runner.runPair(
            {&workloads::findProfile(workloads::cpu2017Suite(), app),
             workloads::InputSize::Ref, 0});
        if (result.errored)
            std::fprintf(stderr, "unexpected failure in %s\n", app);
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Extension: wall-clock overhead of interval telemetry",
        options);

    const std::vector<const char *> apps = {
        "505.mcf_r", "541.leela_r", "519.lbm_r", "548.exchange2_r"};

    auto plain = options.runner;
    plain.sampleIntervalOps = 0;
    auto sampled = options.runner;
    sampled.sampleIntervalOps = 100'000;

    // Warm one throwaway sweep so allocator/page-cache effects hit
    // both timed configurations equally.
    timeSweep(plain, apps);
    const double off_s = timeSweep(plain, apps);
    const double on_s = timeSweep(sampled, apps);
    const double overhead_pct =
        off_s > 0.0 ? (on_s / off_s - 1.0) * 100.0 : 0.0;

    TextTable table({"configuration", "wall s", "overhead %"});
    table.addRow({"sampling off", fmtDouble(off_s, 3), "-"});
    table.addRow({"--sample-interval-ops 100000", fmtDouble(on_s, 3),
                  fmtDouble(overhead_pct, 1)});
    bench::emitTable("telemetry_overhead", table);

    std::printf("reading: interval sampling reads every registered "
                "metric at each boundary and\ncaps simulation chunks "
                "at interval edges; both are O(intervals), so the "
                "cost\nstays a few percent even at fine intervals and "
                "is zero when disabled.\n");
    return 0;
}
