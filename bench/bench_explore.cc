/**
 * @file
 * Design-space explorer throughput: times a one-axis uarch sweep
 * sequentially and on the worker pool, verifies that both produce the
 * bit-identical Pareto table -- measured, not assumed -- and writes a
 * machine-readable BENCH_explore.json for CI trend tracking. The JSON
 * uses the same {batched: [{speedup, identical}]} shape bench_hot_path
 * emits, so tools/check_bench.py gates it without changes.
 *
 * Flags:
 *   --axis=AXIS  swept axis (default way-predictor)
 *   --sample=N   micro-ops measured per pair (default 60,000)
 *   --warmup=N   micro-ops warmed per pair (default 20,000)
 *   --jobs=N     worker threads for the parallel lane (default 4)
 *   --repeats=N  timed repetitions per lane, best kept (default 3)
 *   --out=PATH   JSON output path (default BENCH_explore.json)
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "explore/plan.hh"
#include "explore/runner.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace spec17;

namespace {

struct BenchOptions
{
    std::string axis = "way-predictor";
    std::uint64_t sampleOps = 60'000;
    std::uint64_t warmupOps = 20'000;
    unsigned jobs = 4;
    unsigned repeats = 3;
    std::string outPath = "BENCH_explore.json";
};

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--axis=", 0) == 0) {
            options.axis = arg.substr(7);
        } else if (arg.rfind("--sample=", 0) == 0) {
            options.sampleOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--warmup=", 0) == 0) {
            options.warmupOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.jobs =
                static_cast<unsigned>(std::stoul(arg.substr(7)));
        } else if (arg.rfind("--repeats=", 0) == 0) {
            options.repeats =
                static_cast<unsigned>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--out=", 0) == 0) {
            options.outPath = arg.substr(6);
        } else {
            SPEC17_FATAL("unknown argument '", arg,
                         "' (want --axis=AXIS --sample=N --warmup=N "
                         "--jobs=N --repeats=N --out=PATH)");
        }
    }
    if (!explore::isAxis(options.axis))
        SPEC17_FATAL("unknown axis '", options.axis, "'");
    if (options.jobs == 0)
        options.jobs = 1;
    if (options.repeats == 0)
        options.repeats = 1;
    return options;
}

explore::ExploreOptions
exploreOptions(const BenchOptions &bench, unsigned jobs)
{
    explore::ExploreOptions options;
    options.runner.sampleOps = bench.sampleOps;
    options.runner.warmupOps = bench.warmupOps;
    options.runner.jobs = jobs;
    options.generation = workloads::SuiteGeneration::Cpu2006;
    options.size = workloads::InputSize::Test;
    options.cachePath.clear(); // time the sweep, not the journal
    return options;
}

/** Best wall time of @p body over @p repeats runs. */
template <typename Body>
double
bestOf(unsigned repeats, Body &&body)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto start = std::chrono::steady_clock::now();
        body();
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (r == 0 || wall_s < best)
            best = wall_s;
    }
    return best;
}

/** True when both sweeps scored the identical Pareto table. */
bool
identicalTables(const std::vector<explore::PointResult> &a,
                const std::vector<explore::PointResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].point.label != b[i].point.label
            || a[i].sse != b[i].sse || a[i].meanIpc != b[i].meanIpc
            || a[i].pairs != b[i].pairs
            || a[i].errored != b[i].errored
            || a[i].dominated != b[i].dominated
            || a[i].knee != b[i].knee)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bench = parseArgs(argc, argv);
    const std::size_t points =
        explore::planAxis(bench.axis,
                          exploreOptions(bench, 1).runner.system)
            .size();

    std::printf("bench_explore: axis '%s' (%zu points), %llu+%llu ops "
                "per pair, best of %u repeats per lane\n\n",
                bench.axis.c_str(), points,
                static_cast<unsigned long long>(bench.sampleOps),
                static_cast<unsigned long long>(bench.warmupOps),
                bench.repeats);

    // A fresh runner per repeat so every repetition times the same
    // cold sweep (no per-runner memoization can leak between laps).
    std::vector<explore::PointResult> golden, pooled;
    const double seq_s = bestOf(bench.repeats, [&] {
        golden = explore::ExploreRunner(exploreOptions(bench, 1))
                     .runAxis(bench.axis);
    });
    const double par_s = bestOf(bench.repeats, [&] {
        pooled =
            explore::ExploreRunner(exploreOptions(bench, bench.jobs))
                .runAxis(bench.axis);
    });
    const bool identical = identicalTables(golden, pooled);

    TextTable table({"jobs", "wall s", "points/s", "speedup"});
    table.addRow({"1", fmtDouble(seq_s, 3),
                  fmtDouble(double(points) / seq_s, 2), "1.00x"});
    table.addRow({std::to_string(bench.jobs), fmtDouble(par_s, 3),
                  fmtDouble(double(points) / par_s, 2),
                  fmtDouble(seq_s / par_s, 2) + "x"});
    std::ostringstream rendered;
    table.render(rendered);
    std::printf("%s\n", rendered.str().c_str());

    // Committed via temp+rename like the telemetry sinks: a bench
    // interrupted mid-write can't leave a torn baseline JSON behind.
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"explore\",\n"
        << "  \"axis\": \"" << bench.axis << "\",\n"
        << "  \"points\": " << points << ",\n"
        << "  \"sample_ops\": " << bench.sampleOps << ",\n"
        << "  \"warmup_ops\": " << bench.warmupOps << ",\n"
        << "  \"repeats\": " << bench.repeats << ",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"sequential\": {\"wall_s\": " << seq_s << "},\n"
        << "  \"batched\": [{\"batch_ops\": " << bench.jobs
        << ", \"wall_s\": " << par_s << ", \"speedup\": "
        << seq_s / par_s << ", \"identical\": "
        << (identical ? "true" : "false") << "}]\n"
        << "}\n";
    if (!writeFileAtomic(bench.outPath, out.str()))
        SPEC17_FATAL("cannot write ", bench.outPath);
    std::printf("wrote %s\n", bench.outPath.c_str());

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: the pooled explore sweep scored a "
                     "different Pareto table than the sequential one "
                     "-- the determinism contract is broken\n");
        return 1;
    }
    std::printf("reading: 'identical' confirms the --jobs=%u Pareto "
                "table matches --jobs=1 bit for bit; 'speedup' is the "
                "same-machine wall-time ratio check_bench.py tracks "
                "against the committed baseline.\n",
                bench.jobs);
    return 0;
}
