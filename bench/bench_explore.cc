/**
 * @file
 * Multi-point explorer throughput: times a multi-axis design-space
 * sweep under per-point trace regeneration (no arena store) and under
 * the capture-once/replay-many fan-out engine (shared arena store) at
 * the same job count, verifies that both lanes score the bit-identical
 * Pareto table -- measured, not assumed -- and writes a
 * machine-readable BENCH_explore.json for CI trend tracking. The JSON
 * uses the same {batched: [{speedup, identical}]} shape bench_hot_path
 * emits, so tools/check_bench.py gates it without changes.
 *
 * Flags:
 *   --multi-axis=A,B  crossed axes (default predictor,way-predictor)
 *   --sample=N        micro-ops measured per pair (default 50,000)
 *   --warmup=N        micro-ops warmed per pair (default 12,000)
 *   --jobs=N          worker threads for BOTH lanes (default 1)
 *   --arena-mb=N      arena store budget in MiB (default 512)
 *   --repeats=N       timed repetitions per lane, best kept (default 3)
 *   --out=PATH        JSON output path (default BENCH_explore.json)
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "explore/plan.hh"
#include "explore/runner.hh"
#include "suite/arena_store.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace spec17;

namespace {

struct BenchOptions
{
    std::vector<std::string> axes = {"predictor", "way-predictor"};
    std::uint64_t sampleOps = 50'000;
    std::uint64_t warmupOps = 12'000;
    unsigned jobs = 1;
    std::uint64_t arenaMb = 512;
    unsigned repeats = 3;
    std::string outPath = "BENCH_explore.json";
};

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--multi-axis=", 0) == 0) {
            options.axes.clear();
            std::string cell;
            std::istringstream stream(arg.substr(13));
            while (std::getline(stream, cell, ','))
                if (!cell.empty())
                    options.axes.push_back(cell);
        } else if (arg.rfind("--sample=", 0) == 0) {
            options.sampleOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--warmup=", 0) == 0) {
            options.warmupOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.jobs =
                static_cast<unsigned>(std::stoul(arg.substr(7)));
        } else if (arg.rfind("--arena-mb=", 0) == 0) {
            options.arenaMb = std::stoull(arg.substr(11));
        } else if (arg.rfind("--repeats=", 0) == 0) {
            options.repeats =
                static_cast<unsigned>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--out=", 0) == 0) {
            options.outPath = arg.substr(6);
        } else {
            SPEC17_FATAL("unknown argument '", arg,
                         "' (want --multi-axis=A,B --sample=N "
                         "--warmup=N --jobs=N --arena-mb=N "
                         "--repeats=N --out=PATH)");
        }
    }
    SPEC17_ASSERT(!options.axes.empty(), "no axes to sweep");
    for (const std::string &axis : options.axes) {
        if (!explore::isAxis(axis) && !explore::isGeometryAxis(axis))
            SPEC17_FATAL("unknown axis '", axis, "'");
    }
    if (options.jobs == 0)
        options.jobs = 1;
    if (options.arenaMb == 0)
        SPEC17_FATAL("--arena-mb must be positive (the arena lane is "
                     "the thing being measured)");
    if (options.repeats == 0)
        options.repeats = 1;
    return options;
}

explore::ExploreOptions
exploreOptions(const BenchOptions &bench)
{
    explore::ExploreOptions options;
    options.runner.sampleOps = bench.sampleOps;
    options.runner.warmupOps = bench.warmupOps;
    options.runner.jobs = bench.jobs;
    options.generation = workloads::SuiteGeneration::Cpu2006;
    options.size = workloads::InputSize::Test;
    options.cachePath.clear(); // time the sweep, not the journal
    return options;
}

/** Best wall time of @p body over @p repeats runs. */
template <typename Body>
double
bestOf(unsigned repeats, Body &&body)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto start = std::chrono::steady_clock::now();
        body();
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (r == 0 || wall_s < best)
            best = wall_s;
    }
    return best;
}

/** True when both sweeps scored the identical Pareto table. */
bool
identicalTables(const std::vector<explore::PointResult> &a,
                const std::vector<explore::PointResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].point.label != b[i].point.label
            || a[i].sse != b[i].sse || a[i].meanIpc != b[i].meanIpc
            || a[i].pairs != b[i].pairs
            || a[i].errored != b[i].errored
            || a[i].dominated != b[i].dominated
            || a[i].knee != b[i].knee)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bench = parseArgs(argc, argv);
    std::string axes_label;
    for (std::size_t i = 0; i < bench.axes.size(); ++i)
        axes_label += (i == 0 ? "" : "+") + bench.axes[i];
    const std::size_t points =
        explore::planCross(bench.axes, exploreOptions(bench).runner.system)
            .size();

    std::printf("bench_explore: axes '%s' (%zu points), %llu+%llu ops "
                "per pair, jobs %u, best of %u repeats per lane\n\n",
                axes_label.c_str(), points,
                static_cast<unsigned long long>(bench.sampleOps),
                static_cast<unsigned long long>(bench.warmupOps),
                bench.jobs, bench.repeats);

    // A fresh runner (and a fresh arena store) per repeat so every
    // repetition times the same cold sweep: the arena lane pays its
    // captures inside the measured window, exactly as a real
    // multi-point campaign would.
    std::vector<explore::PointResult> golden, replayed;
    const double regen_s = bestOf(bench.repeats, [&] {
        golden = explore::ExploreRunner(exploreOptions(bench))
                     .runCross(bench.axes);
    });
    const double arena_s = bestOf(bench.repeats, [&] {
        suite::TraceArenaStore store(bench.arenaMb * kMiB);
        explore::ExploreOptions options = exploreOptions(bench);
        options.runner.arenaStore = &store;
        replayed =
            explore::ExploreRunner(options).runCross(bench.axes);
    });
    const bool identical = identicalTables(golden, replayed);

    TextTable table({"lane", "wall s", "points/s", "speedup"});
    table.addRow({"regenerate/point", fmtDouble(regen_s, 3),
                  fmtDouble(double(points) / regen_s, 2), "1.00x"});
    table.addRow({"shared arena", fmtDouble(arena_s, 3),
                  fmtDouble(double(points) / arena_s, 2),
                  fmtDouble(regen_s / arena_s, 2) + "x"});
    std::ostringstream rendered;
    table.render(rendered);
    std::printf("%s\n", rendered.str().c_str());

    // Committed via temp+rename like the telemetry sinks: a bench
    // interrupted mid-write can't leave a torn baseline JSON behind.
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"explore\",\n"
        << "  \"axes\": \"" << axes_label << "\",\n"
        << "  \"points\": " << points << ",\n"
        << "  \"sample_ops\": " << bench.sampleOps << ",\n"
        << "  \"warmup_ops\": " << bench.warmupOps << ",\n"
        << "  \"jobs\": " << bench.jobs << ",\n"
        << "  \"repeats\": " << bench.repeats << ",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"sequential\": {\"wall_s\": " << regen_s << "},\n"
        << "  \"batched\": [{\"batch_ops\": " << points
        << ", \"wall_s\": " << arena_s << ", \"speedup\": "
        << regen_s / arena_s << ", \"identical\": "
        << (identical ? "true" : "false") << "}]\n"
        << "}\n";
    if (!writeFileAtomic(bench.outPath, out.str()))
        SPEC17_FATAL("cannot write ", bench.outPath);
    std::printf("wrote %s\n", bench.outPath.c_str());

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: the shared-arena fan-out sweep scored a "
                     "different Pareto table than per-point "
                     "regeneration -- the replay identity contract is "
                     "broken\n");
        return 1;
    }
    std::printf("reading: 'identical' confirms the shared-arena "
                "fan-out Pareto table matches per-point regeneration "
                "bit for bit at the same --jobs; 'speedup' is the "
                "same-machine wall-time ratio check_bench.py tracks "
                "against the committed baseline.\n");
    return 0;
}
