/**
 * @file
 * Regenerates Table IV: instruction-mix comparison (% loads, %
 * stores, % branches) of the CPU2017 and CPU2006 suites.
 */

#include "bench/common.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table IV: instruction mix comparison of CPU17 and CPU06",
        options);
    core::Characterizer session(options);
    bench::renderCompare(
        session,
        {
            {"% Loads",
             &core::Metrics::loadPct,
             {{26.234, 4.032},
              {24.390, 2.882},
              {23.683, 4.625},
              {26.187, 6.190},
              {24.739, 4.566},
              {25.331, 4.983}}},
            {"% Stores",
             &core::Metrics::storePct,
             {{10.311, 3.534},
              {10.341, 3.444},
              {7.176, 3.342},
              {7.136, 3.346},
              {8.473, 3.755},
              {8.662, 3.751}}},
            {"% Branches",
             &core::Metrics::branchPct,
             {{19.055, 6.526},
              {18.735, 7.168},
              {10.805, 7.165},
              {11.114, 6.475},
              {14.219, 8.014},
              {14.743, 7.804}}},
        });
    return 0;
}
