/**
 * @file
 * Regenerates Fig. 5: L1 / L2 / L3 load miss rates per CPU2017 pair.
 */

#include "bench/common.hh"
#include "util/logging.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 5: cache miss rates (ref)", options);
    core::Characterizer session(options);
    bench::renderPerPairFigure(
        session, {{"L1 miss %", &core::Metrics::l1MissPct},
                  {"L2 miss %", &core::Metrics::l2MissPct},
                  {"L3 miss %", &core::Metrics::l3MissPct}});

    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));
    double l1 = 0.0, l2 = 0.0, l3 = 0.0;
    int l2_gt_l3 = 0;
    for (const auto &m : metrics) {
        l1 += m.l1MissPct;
        l2 += m.l2MissPct;
        l3 += m.l3MissPct;
        l2_gt_l3 += m.l2MissPct > m.l3MissPct;
    }
    const double n = double(metrics.size());
    bench::paperNote("CPU17 avg L1 miss %", 3.424, l1 / n);
    bench::paperNote("CPU17 avg L2 miss %", 32.515, l2 / n);
    bench::paperNote("CPU17 avg L3 miss %", 14.171, l3 / n);
    bench::paperNote("pairs with L2 miss > L3 miss (34 in paper)", 34,
                     l2_gt_l3);

    auto find = [&](const std::string &name) -> const core::Metrics & {
        for (const auto &m : metrics) {
            if (m.name.rfind(name, 0) == 0)
                return m;
        }
        SPEC17_PANIC("pair not found: ", name);
    };
    bench::paperNote("523.xalancbmk_r L1 miss % (highest)", 12.174,
                     find("523.xalancbmk_r").l1MissPct);
    bench::paperNote("605.mcf_s L1 miss % (highest)", 14.138,
                     find("605.mcf_s").l1MissPct);
    bench::paperNote("505.mcf_r L2 miss % (highest)", 65.721,
                     find("505.mcf_r").l2MissPct);
    bench::paperNote("605.mcf_s L2 miss % (highest)", 77.824,
                     find("605.mcf_s").l2MissPct);
    bench::paperNote("531.deepsjeng_r L3 miss % (highest)", 67.516,
                     find("531.deepsjeng_r").l3MissPct);
    bench::paperNote("631.deepsjeng_s L3 miss % (highest)", 68.579,
                     find("631.deepsjeng_s").l3MissPct);
    bench::paperNote("549.fotonik3d_r L2 miss %", 71.609,
                     find("549.fotonik3d_r").l2MissPct);
    bench::paperNote("549.fotonik3d_r L3 miss %", 54.730,
                     find("549.fotonik3d_r").l3MissPct);

    // Correlations with IPC (paper: -0.282, -0.479, -0.137).
    bench::paperNote("corr(L1 miss, IPC)", -0.282,
                     core::correlationWithIpc(
                         metrics, &core::Metrics::l1MissPct));
    bench::paperNote("corr(L2 miss, IPC)", -0.479,
                     core::correlationWithIpc(
                         metrics, &core::Metrics::l2MissPct));
    bench::paperNote("corr(L3 miss, IPC)", -0.137,
                     core::correlationWithIpc(
                         metrics, &core::Metrics::l3MissPct));
    return 0;
}
