/**
 * @file
 * Regenerates Fig. 7 (and lists Table VIII): PCA over the 20
 * microarchitecture-independent characteristics of all CPU2017 ref
 * pairs, printing the PC1/PC2 and PC3/PC4 scatter coordinates.
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 7 / Table VIII: principal components of the CPU17 "
        "application-input pairs (ref)",
        options);
    core::Characterizer session(options);

    std::printf("Table VIII: characteristics used for the PCA\n");
    for (const auto &name : core::pcaFeatureNames())
        std::printf("  - %s\n", name.c_str());
    std::printf("\n");

    const auto analysis = session.redundancyAll();
    std::printf("explained variance by component:\n");
    for (std::size_t c = 0; c < analysis.numComponents; ++c) {
        std::printf("  PC%zu: %6.3f%% (cumulative %6.3f%%)\n", c + 1,
                    100.0 * analysis.pca.explainedVariance[c],
                    100.0 * analysis.pca.cumulativeVariance[c]);
    }
    bench::paperNote(
        "variance captured by retained PCs (%)", 76.321,
        100.0
            * analysis.pca.cumulativeVariance[analysis.numComponents
                                              - 1]);
    bench::paperNote("retained components", 4.0,
                     double(analysis.numComponents));
    std::printf("\n");

    TextTable table({"pair", "PC1", "PC2", "PC3", "PC4"});
    for (std::size_t r = 0; r < analysis.pairNames.size(); ++r) {
        std::vector<std::string> row = {analysis.pairNames[r]};
        for (std::size_t c = 0; c < 4 && c < analysis.numComponents;
             ++c) {
            row.push_back(fmtDouble(analysis.pcScores.at(r, c), 3));
        }
        table.addRow(row);
    }
    std::ostringstream os;
    table.render(os);
    std::printf("%s", os.str().c_str());

    // PC ranges shrink from PC1 to PC4 (the paper's observation that
    // PC1 carries the most variance).
    for (std::size_t c = 0; c + 1 < analysis.numComponents; ++c) {
        double lo0 = 1e300, hi0 = -1e300, lo1 = 1e300, hi1 = -1e300;
        for (std::size_t r = 0; r < analysis.pcScores.rows(); ++r) {
            lo0 = std::min(lo0, analysis.pcScores.at(r, c));
            hi0 = std::max(hi0, analysis.pcScores.at(r, c));
            lo1 = std::min(lo1, analysis.pcScores.at(r, c + 1));
            hi1 = std::max(hi1, analysis.pcScores.at(r, c + 1));
        }
        std::printf("range(PC%zu) = %.3f, range(PC%zu) = %.3f\n",
                    c + 1, hi0 - lo0, c + 2, hi1 - lo1);
    }
    return 0;
}
