/**
 * @file
 * Shared scaffolding for the table/figure bench binaries: a standard
 * characterization session (so every bench sees the same sweep via
 * the on-disk result cache) and small printing helpers.
 *
 * Every binary accepts:
 *   --sample=N     micro-ops measured per pair (default 2,000,000)
 *   --warmup=N     micro-ops warmed before measuring (default 600,000)
 *   --no-cache     ignore / don't write the on-disk result cache
 *   --csv-dir=DIR  additionally write each rendered table as CSV
 *                  into DIR (plot-ready output)
 */

#ifndef SPEC17_BENCH_COMMON_HH_
#define SPEC17_BENCH_COMMON_HH_

#include <string>
#include <vector>

#include "core/characterizer.hh"
#include "util/table.hh"

namespace spec17 {
namespace bench {

/** Parses the common flags and builds the standard session. */
core::CharacterizerOptions parseOptions(int argc, char **argv);

/**
 * Prints the bench banner: which paper artifact this regenerates and
 * the Table-I machine configuration it ran on.
 */
void printHeader(const std::string &artifact,
                 const core::CharacterizerOptions &options);

/** Prints a one-line paper-vs-measured annotation. */
void paperNote(const std::string &quantity, double paper,
               double measured);

/**
 * One metric row of a CPU06-vs-CPU17 comparison table (the shared
 * shape of the paper's Tables III-VII).
 */
struct CompareRow
{
    std::string metric;
    double core::Metrics::*field;
    /**
     * Paper values: {06 int, 17 int, 06 fp, 17 fp, 06 all, 17 all},
     * each {mean, stddev}.
     */
    double paper[6][2];
};

/**
 * Renders a Tables-III-VII style comparison over the ref results of
 * both suites, with paper-vs-measured notes per cell group.
 */
void renderCompare(core::Characterizer &session,
                   const std::vector<CompareRow> &rows);

/** One metric column in a per-application figure. */
struct FigureColumn
{
    std::string label;
    double core::Metrics::*field;
};

/**
 * Renders a Figs.-1-6 style per-application figure: panel (a) is the
 * rate pairs, panel (b) the speed pairs (ref inputs, errored pairs
 * dropped), one row per pair with an ASCII bar for the first column.
 * Dotted separators split int from fp applications like the paper's
 * vertical dotted lines.
 */
void renderPerPairFigure(core::Characterizer &session,
                         const std::vector<FigureColumn> &columns);

/** Fixed-width ASCII bar for a value within [0, max]. */
std::string asciiBar(double value, double max, std::size_t width = 32);

/**
 * Renders @p table to stdout and, when --csv-dir was given, also to
 * `<csv-dir>/<name>.csv`. Use for every bench table so figures can
 * be replotted from machine-readable output.
 */
void emitTable(const std::string &name, const TextTable &table);

} // namespace bench
} // namespace spec17

#endif // SPEC17_BENCH_COMMON_HH_
