/**
 * @file
 * Co-run engine throughput: times a demo pair campaign (four rate
 * apps, self-pairs included) sequentially and on the worker pool,
 * verifies the byte-identity contract between the two journals --
 * measured, not assumed -- and writes a machine-readable
 * BENCH_corun.json for CI trend tracking.
 *
 * Flags:
 *   --sample=N   micro-ops measured per member (default 60,000)
 *   --warmup=N   micro-ops warmed per member (default 20,000)
 *   --jobs=N     worker threads for the parallel lane (default 4)
 *   --repeats=N  timed repetitions per lane, best kept (default 3)
 *   --tmpdir=P   directory for the scratch journals (default /tmp)
 *   --out=PATH   JSON output path (default BENCH_corun.json)
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "corun/plan.hh"
#include "corun/runner.hh"
#include "corun/store.hh"
#include "util/atomic_file.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace spec17;

namespace {

struct BenchOptions
{
    std::uint64_t sampleOps = 60'000;
    std::uint64_t warmupOps = 20'000;
    unsigned jobs = 4;
    unsigned repeats = 3;
    std::string tmpDir = "/tmp";
    std::string outPath = "BENCH_corun.json";
};

BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--sample=", 0) == 0) {
            options.sampleOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--warmup=", 0) == 0) {
            options.warmupOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            options.jobs =
                static_cast<unsigned>(std::stoul(arg.substr(7)));
        } else if (arg.rfind("--repeats=", 0) == 0) {
            options.repeats =
                static_cast<unsigned>(std::stoul(arg.substr(10)));
        } else if (arg.rfind("--tmpdir=", 0) == 0) {
            options.tmpDir = arg.substr(9);
        } else if (arg.rfind("--out=", 0) == 0) {
            options.outPath = arg.substr(6);
        } else {
            SPEC17_FATAL("unknown argument '", arg,
                         "' (want --sample=N --warmup=N --jobs=N "
                         "--repeats=N --tmpdir=P --out=PATH)");
        }
    }
    if (options.jobs == 0)
        options.jobs = 1;
    if (options.repeats == 0)
        options.repeats = 1;
    return options;
}

corun::CorunOptions
runnerOptions(const BenchOptions &bench, unsigned jobs)
{
    corun::CorunOptions options;
    options.sampleOps = bench.sampleOps;
    options.warmupOps = bench.warmupOps;
    options.size = workloads::InputSize::Test;
    options.jobs = jobs;
    return options;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        SPEC17_FATAL("cannot read back ", path);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

/** Best wall time of @p body over @p repeats runs. */
template <typename Body>
double
bestOf(unsigned repeats, Body &&body)
{
    double best = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const auto start = std::chrono::steady_clock::now();
        body();
        const double wall_s =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (r == 0 || wall_s < best)
            best = wall_s;
    }
    return best;
}

/** True when both sweeps agree on every member of every group. */
bool
identicalResults(const std::vector<corun::CorunResult> &a,
                 const std::vector<corun::CorunResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name
            || a[i].members.size() != b[i].members.size())
            return false;
        for (std::size_t m = 0; m < a[i].members.size(); ++m) {
            const corun::MemberResult &x = a[i].members[m];
            const corun::MemberResult &y = b[i].members[m];
            if (x.cycles != y.cycles || x.soloCycles != y.soloCycles
                || x.instructions != y.instructions
                || x.l3Misses != y.l3Misses
                || x.evictionsSuffered != y.evictionsSuffered)
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions bench = parseArgs(argc, argv);

    corun::PlanOptions plan;
    plan.apps = {"505.mcf_r", "519.lbm_r", "541.leela_r",
                 "548.exchange2_r"};
    const auto groups =
        corun::planGroups(workloads::cpu2017Suite(), plan);

    std::printf("bench_corun: %zu pair groups, %llu+%llu ops per "
                "member, best of %u repeats per lane\n\n",
                groups.size(),
                static_cast<unsigned long long>(bench.sampleOps),
                static_cast<unsigned long long>(bench.warmupOps),
                bench.repeats);

    // A fresh runner per repeat: the solo-baseline memo is per
    // runner, so every repetition times the same cold campaign.
    std::vector<corun::CorunResult> golden, pooled;
    const double seq_s = bestOf(bench.repeats, [&] {
        golden = corun::CorunRunner(runnerOptions(bench, 1))
                     .runGroups(groups);
    });
    const double par_s = bestOf(bench.repeats, [&] {
        pooled = corun::CorunRunner(runnerOptions(bench, bench.jobs))
                     .runGroups(groups);
    });
    const bool results_identical = identicalResults(golden, pooled);

    // Journal byte-identity across job counts (the stored contract).
    const std::string base = bench.tmpDir + "/spec17_bench_corun";
    corun::CorunRunner seq_runner(runnerOptions(bench, 1));
    corun::CorunStore seq_store(base + "_seq");
    seq_store.invalidate();
    seq_store.runOrLoad(seq_runner, groups);
    corun::CorunRunner par_runner(runnerOptions(bench, bench.jobs));
    corun::CorunStore par_store(base + "_par");
    par_store.invalidate();
    par_store.runOrLoad(par_runner, groups);
    const bool byte_identical =
        fileBytes(seq_store.journalFile(seq_runner))
        == fileBytes(par_store.journalFile(par_runner));
    seq_store.invalidate();
    par_store.invalidate();

    TextTable table({"jobs", "wall s", "groups/s", "speedup"});
    table.addRow({"1", fmtDouble(seq_s, 3),
                  fmtDouble(double(groups.size()) / seq_s, 1), "1.00x"});
    table.addRow({std::to_string(bench.jobs), fmtDouble(par_s, 3),
                  fmtDouble(double(groups.size()) / par_s, 1),
                  fmtDouble(seq_s / par_s, 2) + "x"});
    std::ostringstream rendered;
    table.render(rendered);
    std::printf("%s\n", rendered.str().c_str());

    // Committed via temp+rename like the telemetry sinks: a bench
    // interrupted mid-write can't leave a torn baseline JSON behind.
    std::ostringstream out;
    out << "{\n"
        << "  \"bench\": \"corun\",\n"
        << "  \"groups\": " << groups.size() << ",\n"
        << "  \"sample_ops\": " << bench.sampleOps << ",\n"
        << "  \"warmup_ops\": " << bench.warmupOps << ",\n"
        << "  \"repeats\": " << bench.repeats << ",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"sequential\": {\"wall_s\": " << seq_s
        << ", \"groups_per_s\": " << double(groups.size()) / seq_s
        << "},\n"
        << "  \"parallel\": {\"jobs\": " << bench.jobs
        << ", \"wall_s\": " << par_s
        << ", \"groups_per_s\": " << double(groups.size()) / par_s
        << ", \"speedup\": " << seq_s / par_s << "},\n"
        << "  \"results_identical\": "
        << (results_identical ? "true" : "false") << ",\n"
        << "  \"byte_identical\": "
        << (byte_identical ? "true" : "false") << "\n"
        << "}\n";
    if (!writeFileAtomic(bench.outPath, out.str()))
        SPEC17_FATAL("cannot write ", bench.outPath);
    std::printf("wrote %s\n", bench.outPath.c_str());

    if (!results_identical || !byte_identical) {
        std::fprintf(stderr,
                     "FAIL: parallel co-run sweep diverged from the "
                     "sequential one -- the determinism contract is "
                     "broken\n");
        return 1;
    }
    std::printf("reading: groups/s counts co-run groups simulated per "
                "second (solo baselines\nincluded); 'byte_identical' "
                "confirms --jobs=%u journals match --jobs=1 exactly.\n"
                "speedup saturates at the hardware concurrency (%u "
                "here).\n",
                bench.jobs, std::thread::hardware_concurrency());
    return 0;
}
