/**
 * @file
 * Regenerates Table VII: branch-mispredict-rate comparison of the
 * CPU2017 and CPU2006 suites.
 */

#include "bench/common.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table VII: branch predictor accuracy comparison of CPU17 "
        "and CPU06",
        options);
    core::Characterizer session(options);
    bench::renderCompare(
        session,
        {{"Mispredict Rate (%)",
          &core::Metrics::mispredictPct,
          {{2.393, 2.505},
           {3.310, 2.441},
           {1.971, 1.653},
           {1.188, 1.202},
           {2.145, 2.060},
           {2.198, 2.172}}}});
    return 0;
}
