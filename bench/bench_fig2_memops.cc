/**
 * @file
 * Regenerates Fig. 2: breakdown of memory micro-operations (% loads
 * and % stores of retired micro-ops) per CPU2017 pair.
 */

#include "bench/common.hh"
#include "util/logging.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 2: breakdown of memory micro-operations (ref)",
        options);
    core::Characterizer session(options);
    bench::renderPerPairFigure(session,
                               {{"% loads", &core::Metrics::loadPct},
                                {"% stores", &core::Metrics::storePct}});

    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));
    double mem_sum = 0.0;
    for (const auto &m : metrics)
        mem_sum += m.loadPct + m.storePct;
    bench::paperNote("CPU17 avg % memory micro-ops", 33.993,
                     mem_sum / double(metrics.size()));
    auto find = [&](const std::string &name) -> const core::Metrics & {
        for (const auto &m : metrics) {
            if (m.name.rfind(name, 0) == 0)
                return m;
        }
        SPEC17_PANIC("pair not found: ", name);
    };
    bench::paperNote("507.cactuBSSN_r % mem (highest rate)", 48.375,
                     find("507.cactuBSSN_r").loadPct
                         + find("507.cactuBSSN_r").storePct);
    bench::paperNote("654.roms_s % loads (lowest)", 11.504,
                     find("654.roms_s").loadPct);
    bench::paperNote("548.exchange2_r % stores (highest int)", 15.911,
                     find("548.exchange2_r").storePct);
    bench::paperNote("519.lbm_r % stores (highest fp)", 13.076,
                     find("519.lbm_r").storePct);
    return 0;
}
