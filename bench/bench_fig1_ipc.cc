/**
 * @file
 * Regenerates Fig. 1: instructions per cycle for every CPU2017
 * application-input pair, rate (a) and speed (b) mini-suites.
 */

#include "bench/common.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 1: instructions per cycle (ref)",
                       options);
    core::Characterizer session(options);
    bench::renderPerPairFigure(session,
                               {{"IPC", &core::Metrics::ipc}});

    // The paper's named extremes.
    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));
    auto ipc_of = [&](const std::string &name) {
        for (const auto &m : metrics) {
            if (m.name.rfind(name, 0) == 0)
                return m.ipc;
        }
        return 0.0;
    };
    bench::paperNote("525.x264_r IPC (highest rate int)", 3.024,
                     ipc_of("525.x264_r"));
    bench::paperNote("505.mcf_r IPC (lowest rate int)", 0.886,
                     ipc_of("505.mcf_r"));
    bench::paperNote("508.namd_r IPC (highest rate fp)", 2.265,
                     ipc_of("508.namd_r"));
    bench::paperNote("549.fotonik3d_r IPC (lowest rate fp)", 1.117,
                     ipc_of("549.fotonik3d_r"));
    bench::paperNote("625.x264_s IPC (highest speed int)", 3.038,
                     ipc_of("625.x264_s"));
    bench::paperNote("657.xz_s IPC (low speed int)", 0.903,
                     ipc_of("657.xz_s"));
    bench::paperNote("628.pop2_s IPC (highest speed fp)", 1.642,
                     ipc_of("628.pop2_s"));
    bench::paperNote("619.lbm_s IPC (lowest speed fp)", 0.062,
                     ipc_of("619.lbm_s"));
    return 0;
}
