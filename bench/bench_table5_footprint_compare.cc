/**
 * @file
 * Regenerates Table V: RSS and VSZ comparison of the CPU2017 and
 * CPU2006 suites (GiB).
 */

#include "bench/common.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Table V: RSS and VSZ comparison of CPU17 and CPU06",
        options);
    core::Characterizer session(options);
    bench::renderCompare(
        session,
        {
            {"RSS (GiB)",
             &core::Metrics::rssGiB,
             {{0.391, 0.454},
              {1.684, 3.073},
              {0.366, 0.342},
              {2.297, 3.434},
              {0.376, 0.393},
              {1.998, 3.278}}},
            {"VSZ (GiB)",
             &core::Metrics::vszGiB,
             {{0.399, 0.453},
              {1.899, 3.658},
              {0.491, 0.400},
              {2.856, 3.755},
              {0.452, 0.426},
              {2.389, 3.739}}},
        });
    return 0;
}
