/**
 * @file
 * Regenerates Fig. 4: memory footprint (max RSS and VSZ) per CPU2017
 * pair, the paper's `ps -o vsz,rss` polling analogue.
 */

#include "bench/common.hh"
#include "util/logging.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 4: memory footprint (ref)", options);
    core::Characterizer session(options);
    bench::renderPerPairFigure(session,
                               {{"RSS (GiB)", &core::Metrics::rssGiB},
                                {"VSZ (GiB)", &core::Metrics::vszGiB}});

    const auto metrics = core::withoutErrored(session.metrics(
        workloads::SuiteGeneration::Cpu2017, workloads::InputSize::Ref));
    auto find = [&](const std::string &name) -> const core::Metrics & {
        for (const auto &m : metrics) {
            if (m.name.rfind(name, 0) == 0)
                return m;
        }
        SPEC17_PANIC("pair not found: ", name);
    };
    bench::paperNote("657.xz_s RSS GiB (largest)", 12.385,
                     find("657.xz_s").rssGiB);
    bench::paperNote("657.xz_s VSZ GiB (largest)", 15.422,
                     find("657.xz_s").vszGiB);
    bench::paperNote("548.exchange2_r RSS MiB (smallest)", 1.148,
                     find("548.exchange2_r").rssGiB * 1024.0);
    bench::paperNote("548.exchange2_r VSZ MiB (smallest)", 15.160,
                     find("548.exchange2_r").vszGiB * 1024.0);

    // Speed-vs-rate footprint ratio (the paper reports 8.276x RSS /
    // 9.764x VSZ).
    double rate_rss = 0.0, speed_rss = 0.0, rate_vsz = 0.0,
           speed_vsz = 0.0;
    int rate_n = 0, speed_n = 0;
    for (const auto &m : metrics) {
        if (workloads::isSpeedSuite(m.suite)) {
            speed_rss += m.rssGiB;
            speed_vsz += m.vszGiB;
            ++speed_n;
        } else {
            rate_rss += m.rssGiB;
            rate_vsz += m.vszGiB;
            ++rate_n;
        }
    }
    bench::paperNote("speed/rate RSS ratio", 8.276,
                     (speed_rss / speed_n) / (rate_rss / rate_n));
    bench::paperNote("speed/rate VSZ ratio", 9.764,
                     (speed_vsz / speed_n) / (rate_vsz / rate_n));

    // IPC correlations the paper reports in Section IV-C.
    bench::paperNote("corr(RSS, IPC)", -0.465,
                     core::correlationWithIpc(metrics,
                                              &core::Metrics::rssGiB));
    bench::paperNote("corr(VSZ, IPC)", -0.510,
                     core::correlationWithIpc(metrics,
                                              &core::Metrics::vszGiB));
    return 0;
}
