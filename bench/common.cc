#include "bench/common.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/descriptive.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace spec17 {
namespace bench {

namespace {

/** Directory for --csv-dir output; empty = disabled. */
std::string &
csvDir()
{
    static std::string dir;
    return dir;
}

} // namespace

core::CharacterizerOptions
parseOptions(int argc, char **argv)
{
    core::CharacterizerOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--sample=", 0) == 0) {
            options.runner.sampleOps = std::stoull(arg.substr(9));
        } else if (arg.rfind("--warmup=", 0) == 0) {
            options.runner.warmupOps = std::stoull(arg.substr(9));
        } else if (arg == "--no-cache") {
            options.cachePath.clear();
        } else if (arg.rfind("--csv-dir=", 0) == 0) {
            csvDir() = arg.substr(10);
        } else {
            SPEC17_FATAL("unknown argument '", arg,
                         "' (want --sample=N --warmup=N --no-cache"
                         " --csv-dir=DIR)");
        }
    }
    return options;
}

void
emitTable(const std::string &name, const TextTable &table)
{
    std::ostringstream os;
    table.render(os);
    std::printf("%s\n", os.str().c_str());
    if (csvDir().empty())
        return;
    const std::string path = csvDir() + "/" + name + ".csv";
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        warn("cannot write CSV to ", path);
        return;
    }
    table.renderCsv(out);
}

void
printHeader(const std::string &artifact,
            const core::CharacterizerOptions &options)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s\n", artifact.c_str());
    std::printf("reproduction of Limaye & Adegbija, ISPASS 2018\n");
    std::printf("%s", options.runner.system.describe().c_str());
    std::printf("sample %llu uops/pair after %llu warmup; cache %s\n",
                static_cast<unsigned long long>(options.runner.sampleOps),
                static_cast<unsigned long long>(options.runner.warmupOps),
                options.cachePath.empty() ? "(off)"
                                          : options.cachePath.c_str());
    std::printf("================================================="
                "=============\n\n");
}

void
paperNote(const std::string &quantity, double paper, double measured)
{
    std::printf("  [paper-vs-measured] %-38s paper=%10.3f  "
                "measured=%10.3f\n",
                quantity.c_str(), paper, measured);
}

void
renderCompare(core::Characterizer &session,
              const std::vector<CompareRow> &rows)
{
    using workloads::InputSize;
    using workloads::SuiteGeneration;

    const auto m06 = core::withoutErrored(
        session.metrics(SuiteGeneration::Cpu2006, InputSize::Ref));
    const auto m17 = core::withoutErrored(
        session.metrics(SuiteGeneration::Cpu2017, InputSize::Ref));

    // Column groups in paper order: 06 int, 17 int, 06 fp, 17 fp,
    // 06 all, 17 all.
    const std::vector<core::Metrics> groups[6] = {
        core::intSubset(m06), core::intSubset(m17),
        core::fpSubset(m06),  core::fpSubset(m17),
        m06,                  m17,
    };
    static const char *const kGroupNames[6] = {
        "CPU06 int", "CPU17 int", "CPU06 fp",
        "CPU17 fp",  "CPU06 all", "CPU17 all",
    };

    for (const CompareRow &row : rows) {
        TextTable table({"Suite", row.metric + " Average",
                         row.metric + " Std. Dev."});
        for (int g = 0; g < 6; ++g) {
            std::vector<double> values =
                core::extract(groups[g], row.field);
            const double mean = stats::mean(values);
            const double sd = stats::stddev(values);
            table.addRow({kGroupNames[g], fmtDouble(mean, 3),
                          fmtDouble(sd, 3)});
            paperNote(std::string(kGroupNames[g]) + " " + row.metric,
                      row.paper[g][0], mean);
        }
        std::printf("\n");
        std::string slug = row.metric;
        for (char &c : slug) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        emitTable("compare_" + slug, table);
    }
}

std::string
asciiBar(double value, double max, std::size_t width)
{
    if (max <= 0.0)
        max = 1.0;
    const double clamped = value < 0.0 ? 0.0 : value;
    auto filled = static_cast<std::size_t>(
        clamped / max * static_cast<double>(width) + 0.5);
    if (filled > width)
        filled = width;
    return std::string(filled, '#') + std::string(width - filled, ' ');
}

void
renderPerPairFigure(core::Characterizer &session,
                    const std::vector<FigureColumn> &columns)
{
    using workloads::InputSize;
    using workloads::SuiteGeneration;
    SPEC17_ASSERT(!columns.empty(), "figure without columns");

    const auto metrics = core::withoutErrored(session.metrics(
        SuiteGeneration::Cpu2017, InputSize::Ref));

    for (int panel = 0; panel < 2; ++panel) {
        const bool speed = panel == 1;
        std::vector<core::Metrics> pairs;
        for (const auto &m : metrics) {
            if (workloads::isSpeedSuite(m.suite) == speed)
                pairs.push_back(m);
        }
        double max = 0.0;
        for (const auto &m : pairs)
            max = std::max(max, m.*(columns.front().field));

        std::printf("(%c) %s mini-suites\n", speed ? 'b' : 'a',
                    speed ? "speed" : "rate");
        std::vector<std::string> headers = {"pair"};
        for (const auto &column : columns)
            headers.push_back(column.label);
        headers.push_back("");
        TextTable table(headers);
        bool fp_started = false;
        for (const auto &m : pairs) {
            if (!fp_started && !workloads::isIntSuite(m.suite)) {
                fp_started = true;
                // The paper separates int and fp with dotted lines.
                std::vector<std::string> rule;
                for (std::size_t i = 0; i < headers.size(); ++i)
                    rule.push_back("......");
                table.addRow(rule);
            }
            std::vector<std::string> row = {m.name};
            for (const auto &column : columns)
                row.push_back(fmtDouble(m.*(column.field), 3));
            row.push_back(asciiBar(m.*(columns.front().field), max));
            table.addRow(row);
        }
        emitTable(std::string("figure_panel_")
                      + (speed ? "speed" : "rate") + "_"
                      + columns.front().label.substr(
                            0, columns.front().label.find(' ')),
                  table);
    }
}

} // namespace bench
} // namespace spec17
