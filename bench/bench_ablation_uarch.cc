/**
 * @file
 * Ablation bench (ours, beyond the paper): sensitivity of the
 * characterization to microarchitecture choices the paper's fixed
 * testbed could not vary -- branch predictor, L1/L2 replacement
 * policy, and hardware prefetcher. Demonstrates which of the paper's
 * metrics are microarchitecture-dependent and by how much.
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "util/table.hh"

using namespace spec17;

namespace {

/** Representative pairs spanning the behaviour space. */
const char *const kApps[] = {
    "505.mcf_r",       // pointer chasing
    "525.x264_r",      // high-ILP streaming
    "541.leela_r",     // mispredict-bound
    "519.lbm_r",       // bandwidth-bound streaming
    "523.xalancbmk_r", // L1-pressure
};

suite::PairResult
runWith(const core::CharacterizerOptions &base,
        const std::string &predictor, const std::string &prefetcher,
        sim::ReplacementPolicy policy, const char *app)
{
    suite::RunnerOptions options = base.runner;
    options.system.branchPredictor = predictor;
    options.system.hierarchy.prefetcher = prefetcher;
    options.system.hierarchy.l1d.policy = policy;
    options.system.hierarchy.l2.policy = policy;
    suite::SuiteRunner runner(options);
    const auto &profile =
        workloads::findProfile(workloads::cpu2017Suite(), app);
    return runner.runPair({&profile, workloads::InputSize::Ref, 0});
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);
    // Ablations use their own configurations; keep them snappy and
    // uncached.
    options.runner.sampleOps = std::min<std::uint64_t>(
        options.runner.sampleOps, 600'000);
    options.runner.warmupOps = std::min<std::uint64_t>(
        options.runner.warmupOps, 200'000);
    bench::printHeader(
        "Ablation: branch predictor / replacement / prefetcher "
        "sensitivity",
        options);

    std::printf("--- branch predictor (IPC / mispredict %%) ---\n");
    TextTable predictor_table(
        {"pair", "static-taken", "bimodal", "gshare", "tournament"});
    for (const char *app : kApps) {
        std::vector<std::string> row = {app};
        for (const char *predictor :
             {"static-taken", "bimodal", "gshare", "tournament"}) {
            const auto result =
                runWith(options, predictor, "none",
                        sim::ReplacementPolicy::Lru, app);
            const auto metrics = core::deriveMetrics(result);
            row.push_back(fmtDouble(metrics.ipc, 2) + " / "
                          + fmtDouble(metrics.mispredictPct, 2));
        }
        predictor_table.addRow(row);
    }
    std::ostringstream os1;
    predictor_table.render(os1);
    std::printf("%s\n", os1.str().c_str());

    std::printf("--- L1/L2 replacement policy (L1 miss %% / L2 miss "
                "%%) ---\n");
    TextTable policy_table({"pair", "lru", "tree-plru", "random"});
    for (const char *app : kApps) {
        std::vector<std::string> row = {app};
        for (sim::ReplacementPolicy policy :
             {sim::ReplacementPolicy::Lru, sim::ReplacementPolicy::TreePlru,
              sim::ReplacementPolicy::Random}) {
            const auto result =
                runWith(options, "tournament", "none", policy, app);
            const auto metrics = core::deriveMetrics(result);
            row.push_back(fmtDouble(metrics.l1MissPct, 2) + " / "
                          + fmtDouble(metrics.l2MissPct, 2));
        }
        policy_table.addRow(row);
    }
    std::ostringstream os2;
    policy_table.render(os2);
    std::printf("%s\n", os2.str().c_str());

    std::printf("--- data prefetcher (IPC / L1 miss %%) ---\n");
    TextTable prefetch_table({"pair", "none", "next-line", "stride"});
    for (const char *app : kApps) {
        std::vector<std::string> row = {app};
        for (const char *prefetcher : {"none", "next-line", "stride"}) {
            const auto result =
                runWith(options, "tournament", prefetcher,
                        sim::ReplacementPolicy::Lru, app);
            const auto metrics = core::deriveMetrics(result);
            row.push_back(fmtDouble(metrics.ipc, 2) + " / "
                          + fmtDouble(metrics.l1MissPct, 2));
        }
        prefetch_table.addRow(row);
    }
    std::ostringstream os3;
    prefetch_table.render(os3);
    std::printf("%s\n", os3.str().c_str());

    std::printf("--- TLB modelling (IPC off / on, dTLB walks per "
                "kilo-op) ---\n");
    TextTable tlb_table({"pair", "IPC (no TLB)", "IPC (TLB)",
                         "walks/kop"});
    for (const char *app : kApps) {
        const auto base =
            runWith(options, "tournament", "none",
                    sim::ReplacementPolicy::Lru, app);
        suite::RunnerOptions tlb_options = options.runner;
        tlb_options.sampleOps = std::min<std::uint64_t>(
            tlb_options.sampleOps, 600'000);
        tlb_options.warmupOps = std::min<std::uint64_t>(
            tlb_options.warmupOps, 200'000);
        tlb_options.system.enableTlb = true;
        suite::SuiteRunner runner(tlb_options);
        const auto &profile =
            workloads::findProfile(workloads::cpu2017Suite(), app);
        const auto with_tlb =
            runner.runPair({&profile, workloads::InputSize::Ref, 0});
        const double kops =
            double(with_tlb.counters.get(
                counters::PerfEvent::InstRetiredAny))
            / 1000.0;
        tlb_table.addRow(
            {app, fmtDouble(base.ipc(), 3),
             fmtDouble(with_tlb.ipc(), 3),
             fmtDouble(double(with_tlb.counters.get(
                           counters::PerfEvent::DtlbLoadMissesWalk))
                           / kops,
                       2)});
    }
    std::ostringstream os4;
    tlb_table.render(os4);
    std::printf("%s\n", os4.str().c_str());

    std::printf("expected shape: streaming pairs (519.lbm_r, "
                "525.x264_r) gain from prefetching;\n"
                "541.leela_r degrades most under static-taken; "
                "random replacement hurts the\nL1-pressure pair "
                "(523.xalancbmk_r) least at L2 where its set "
                "pressure is low;\nTLB walks track working-set size "
                "(505.mcf_r worst).\n");
    return 0;
}
