/**
 * @file
 * Regenerates Fig. 9: dendrograms of the agglomerative hierarchical
 * clustering of the rate (a) and speed (b) ref pairs in PC space.
 */

#include <cstdio>

#include "bench/common.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 9: dendrograms of the rate and speed mini-suites "
        "(ref)",
        options);
    core::Characterizer session(options);

    for (int panel = 0; panel < 2; ++panel) {
        const bool speed = panel == 1;
        const auto analysis = session.redundancyFor(speed);
        std::printf("(%c) %s pairs -- Euclidean distance in PC space, "
                    "distance grows to the right\n\n",
                    speed ? 'b' : 'a', speed ? "speed" : "rate");
        std::printf("%s\n",
                    analysis.dendrogram
                        .renderAscii(analysis.pairNames, 64)
                        .c_str());

        // The paper's example: 602.gcc_s-in2/-in3 merge in the first
        // iterations of the speed clustering.
        if (speed) {
            const auto &steps = analysis.dendrogram.steps();
            for (std::size_t i = 0;
                 i < std::min<std::size_t>(5, steps.size()); ++i) {
                auto name = [&](std::size_t node) {
                    return node < analysis.pairNames.size()
                        ? analysis.pairNames[node]
                        : "cluster#" + std::to_string(node);
                };
                std::printf("merge %zu: %s + %s at %.3f\n", i + 1,
                            name(steps[i].left).c_str(),
                            name(steps[i].right).c_str(),
                            steps[i].distance);
            }
        }
    }
    return 0;
}
