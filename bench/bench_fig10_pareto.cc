/**
 * @file
 * Regenerates Fig. 10: the SSE-vs-execution-time sweep over cluster
 * counts and the Pareto-optimal choice for the rate and speed pair
 * sets (the paper selects 12 rate / 10 speed clusters).
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "core/subset.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Figure 10: Pareto-optimal cluster sizes (SSE vs subset "
        "execution time)",
        options);
    core::Characterizer session(options);

    for (int panel = 0; panel < 2; ++panel) {
        const bool speed = panel == 1;
        const auto analysis = session.redundancyFor(speed);
        const auto subset = core::suggestSubset(analysis);

        std::printf("(%c) %s pairs\n", speed ? 'b' : 'a',
                    speed ? "speed" : "rate");
        TextTable table({"clusters", "SSE", "subset time (s)", "",
                         "knee"});
        double sse_max = 0.0;
        for (const auto &tp : subset.sweep)
            sse_max = std::max(sse_max, tp.sse);
        for (const auto &tp : subset.sweep) {
            const bool knee =
                tp.numClusters
                == subset.sweep[subset.chosen].numClusters;
            table.addRow({std::to_string(tp.numClusters),
                          fmtDouble(tp.sse, 3),
                          fmtDouble(tp.cost, 1),
                          bench::asciiBar(tp.sse, sse_max, 24),
                          knee ? "<== chosen" : ""});
        }
        std::ostringstream os;
        table.render(os);
        std::printf("%s\n", os.str().c_str());

        bench::paperNote(speed ? "speed optimal cluster count"
                               : "rate optimal cluster count",
                         speed ? 10.0 : 12.0,
                         double(subset.numClusters()));
    }
    return 0;
}
