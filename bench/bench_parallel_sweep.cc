/**
 * @file
 * Extension experiment: parallel sweep scaling. Runs the same
 * cpu2006 test-input sweep at --jobs 1/2/4/8 and reports wall time
 * and speedup per job count, verifying along the way that every
 * configuration produced identical results -- the determinism
 * contract measured, not assumed. Pairs are embarrassingly parallel
 * (per-pair seeds derive purely from the root seed and the pair
 * identity), so scaling should track the core count until the
 * longest single pair dominates.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/common.hh"
#include "suite/runner.hh"
#include "util/table.hh"

using namespace spec17;

namespace {

/** Wall-clock seconds for one full sweep under @p options. */
double
timeSweep(const suite::RunnerOptions &options,
          std::vector<suite::PairResult> &results)
{
    const auto start = std::chrono::steady_clock::now();
    suite::SuiteRunner runner(options);
    results = runner.runAll(workloads::cpu2006Suite(),
                            workloads::InputSize::Test);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** True when both sweeps agree on every counter of every pair. */
bool
identicalResults(const std::vector<suite::PairResult> &a,
                 const std::vector<suite::PairResult> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name || a[i].seconds != b[i].seconds)
            return false;
        for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
            const auto event = static_cast<counters::PerfEvent>(e);
            if (a[i].counters.get(event) != b[i].counters.get(event))
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);
    bench::printHeader(
        "Extension: parallel sweep scaling (--jobs 1/2/4/8)", options);
    std::printf("hardware concurrency: %u (speedup saturates here; "
                "job counts beyond it only\nmeasure oversubscription "
                "overhead)\n\n",
                std::thread::hardware_concurrency());

    auto runner_options = options.runner;
    // Warm one throwaway sweep so allocator/page-cache effects hit
    // every timed job count equally.
    std::vector<suite::PairResult> golden;
    runner_options.jobs = 1;
    timeSweep(runner_options, golden);

    TextTable table({"jobs", "wall s", "speedup", "identical"});
    double baseline_s = 0.0;
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        runner_options.jobs = jobs;
        std::vector<suite::PairResult> results;
        const double wall_s = timeSweep(runner_options, results);
        if (jobs == 1)
            baseline_s = wall_s;
        table.addRow({std::to_string(jobs), fmtDouble(wall_s, 3),
                      fmtDouble(baseline_s / wall_s, 2) + "x",
                      identicalResults(golden, results) ? "yes"
                                                        : "NO"});
    }
    bench::emitTable("parallel_sweep", table);

    std::printf("reading: pairs are embarrassingly parallel and the "
                "ordered-commit drain adds\nonly a mutex per "
                "completion, so speedup tracks the core count until "
                "the\nlongest single pair dominates the critical "
                "path; 'identical' confirms every\njob count produced "
                "byte-for-byte the same counters.\n");
    return 0;
}
