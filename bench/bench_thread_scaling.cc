/**
 * @file
 * Extension experiment: thread-count scaling of the speed-fp
 * applications. The paper fixes 4 OpenMP threads; the simulator can
 * sweep the thread count and show *why* speed-fp IPC collapses --
 * shared-L3 and DRAM-bandwidth contention grow with the thread count
 * while per-thread work shrinks.
 */

#include <cstdio>

#include "bench/common.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    auto options = bench::parseOptions(argc, argv);
    options.runner.sampleOps = std::min<std::uint64_t>(
        options.runner.sampleOps, 800'000);
    options.runner.warmupOps = std::min<std::uint64_t>(
        options.runner.warmupOps, 240'000);
    bench::printHeader(
        "Extension: thread-count scaling of the speed-fp pairs",
        options);

    const char *const apps[] = {"619.lbm_s", "603.bwaves_s",
                                "628.pop2_s", "654.roms_s"};
    const unsigned threads[] = {1, 2, 4, 8};

    TextTable table({"application", "1 thread", "2 threads",
                     "4 threads (paper)", "8 threads"});
    for (const char *app : apps) {
        std::vector<std::string> row = {app};
        for (unsigned t : threads) {
            // Copy the profile with an overridden thread count; the
            // runner handles the multicore setup.
            workloads::WorkloadProfile profile =
                workloads::findProfile(workloads::cpu2017Suite(), app);
            profile.numThreads = t;
            suite::SuiteRunner runner(options.runner);
            const auto result = runner.runPair(
                {&profile, workloads::InputSize::Ref, 0});
            row.push_back(fmtDouble(result.ipc(), 3));
        }
        table.addRow(row);
    }
    bench::emitTable("thread_scaling_ipc", table);

    std::printf("reading: aggregate IPC (instructions / summed "
                "thread cycles, the paper's metric)\nfalls as "
                "threads contend for the shared L3 and DRAM channel; "
                "the mostly-shared\nworking set of 628.pop2_s "
                "degrades least -- exactly why it tops the paper's\n"
                "Fig. 1b while 619.lbm_s bottoms it.\n");
    return 0;
}
