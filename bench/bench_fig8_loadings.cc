/**
 * @file
 * Regenerates Fig. 8: factor loadings of the 20 characteristics on
 * the retained principal components.
 */

#include <cstdio>
#include <sstream>

#include "bench/common.hh"
#include "util/table.hh"

using namespace spec17;

int
main(int argc, char **argv)
{
    const auto options = bench::parseOptions(argc, argv);
    bench::printHeader("Figure 8: factor loadings", options);
    core::Characterizer session(options);
    const auto analysis = session.redundancyAll();

    std::vector<std::string> headers = {"characteristic"};
    for (std::size_t c = 0; c < analysis.numComponents; ++c)
        headers.push_back("PC" + std::to_string(c + 1));
    TextTable table(headers);
    const auto &names = core::pcaFeatureNames();
    for (std::size_t r = 0; r < names.size(); ++r) {
        std::vector<std::string> row = {names[r]};
        for (std::size_t c = 0; c < analysis.numComponents; ++c)
            row.push_back(fmtDouble(analysis.pca.loadings.at(r, c), 3));
        table.addRow(row);
    }
    std::ostringstream os;
    table.render(os);
    std::printf("%s\n", os.str().c_str());

    std::printf("dominant characteristics per component "
                "(paper Section V-A analysis):\n");
    for (const auto &factor : analysis.factors) {
        std::printf("  PC%zu (%.1f%% of variance)\n",
                    factor.component + 1,
                    100.0 * factor.explainedVariance);
        for (const auto &fc : factor.positiveDominators) {
            std::printf("    + %-46s %+0.3f\n",
                        fc.characteristic.c_str(), fc.loading);
        }
        for (const auto &fc : factor.negativeDominators) {
            std::printf("    - %-46s %+0.3f\n",
                        fc.characteristic.c_str(), fc.loading);
        }
    }
    return 0;
}
