/**
 * @file
 * Entry point of the `spec17` command-line tool.
 */

#include <iostream>

#include "tools/cli.hh"

int
main(int argc, char **argv)
{
    const auto command =
        spec17::cli::parseCommandLine(argc - 1, argv + 1);
    return spec17::cli::runCommand(command, std::cout, std::cerr);
}
