/**
 * @file
 * Implementation of the `spec17` command-line tool's subcommands,
 * factored out of main() so they are unit-testable. Each command
 * writes its report to a stream and returns a process exit code.
 *
 * Subcommands:
 *   list          enumerate applications / application-input pairs
 *   stat          run one pair under the simulated perf monitor
 *   characterize  sweep a whole suite and tabulate Section-IV metrics
 *   subset        suggest a representative subset (paper Section V)
 *   phases        phase analysis of one pair (paper future work)
 *   config        print the simulated machine configuration
 */

#ifndef SPEC17_TOOLS_CLI_HH_
#define SPEC17_TOOLS_CLI_HH_

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace spec17 {
namespace cli {

/** Parsed command line: subcommand, positionals, --key=value flags. */
struct CommandLine
{
    std::string command;
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    /** Flag value or @p fallback. */
    std::string flag(const std::string &key,
                     const std::string &fallback = "") const;
    /** Numeric flag or @p fallback; malformed values are fatal. */
    std::uint64_t flagUint(const std::string &key,
                           std::uint64_t fallback) const;
    bool hasFlag(const std::string &key) const;
};

/**
 * Parses argv (beyond argv[0]). Flags are "--key=value" or bare
 * "--key"; everything else is positional, with the first positional
 * being the subcommand.
 */
CommandLine parseCommandLine(int argc, const char *const *argv);

/** Runs the parsed command; returns the process exit code. */
int runCommand(const CommandLine &command, std::ostream &out,
               std::ostream &err);

/** Usage text. */
std::string usage();

} // namespace cli
} // namespace spec17

#endif // SPEC17_TOOLS_CLI_HH_
