/**
 * @file
 * Implementation of the `spec17` command-line tool's subcommands,
 * factored out of main() so they are unit-testable. Each command
 * writes its report to a stream and returns a process exit code.
 *
 * Subcommands:
 *   list          enumerate applications / application-input pairs
 *   stat          run one pair under the simulated perf monitor
 *   characterize  sweep a whole suite and tabulate Section-IV metrics
 *   corun         co-run interference sweep on the shared L3
 *   explore       one-axis uarch design-space sweep (Pareto table)
 *   subset        suggest a representative subset (paper Section V)
 *   phases        phase analysis of one pair (paper future work)
 *   config        print the simulated machine configuration
 *   merge         fuse shard journals into the canonical journal
 *   fsck          verify (and --repair) journal integrity offline
 */

#ifndef SPEC17_TOOLS_CLI_HH_
#define SPEC17_TOOLS_CLI_HH_

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace spec17 {
namespace cli {

/** Parsed command line: subcommand, positionals, --key=value flags. */
struct CommandLine
{
    std::string command;
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    /** Flag value or @p fallback. */
    std::string flag(const std::string &key,
                     const std::string &fallback = "") const;
    /** Numeric flag or @p fallback; malformed values are fatal. */
    std::uint64_t flagUint(const std::string &key,
                           std::uint64_t fallback) const;
    bool hasFlag(const std::string &key) const;
};

/**
 * Parses argv (beyond argv[0]). Flags are "--key=value" or bare
 * "--key"; everything else is positional, with the first positional
 * being the subcommand.
 */
CommandLine parseCommandLine(int argc, const char *const *argv);

/** Runs the parsed command; returns the process exit code. */
int runCommand(const CommandLine &command, std::ostream &out,
               std::ostream &err);

/**
 * One accepted `--flag` of the CLI. The table below is the single
 * source of truth: usage() renders it and runCommand() validates
 * parsed flags against it, so help text and the accepted flag set
 * cannot drift apart.
 */
struct FlagSpec
{
    const char *name;        //!< without the leading "--"
    const char *placeholder; //!< value placeholder, "" for booleans
    const char *help;        //!< one-line description
    const char *group;       //!< usage section this flag renders under
};

/** Every flag the CLI accepts, in usage() rendering order. */
const std::vector<FlagSpec> &flagTable();

/** Usage text (commands plus the rendered flag table). */
std::string usage();

} // namespace cli
} // namespace spec17

#endif // SPEC17_TOOLS_CLI_HH_
