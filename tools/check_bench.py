#!/usr/bin/env python3
"""Gates CI on a fresh hot-path bench run against the committed baseline.

Two checks, both on the JSON bench_hot_path emits:

1. Correctness: every batched point must report "identical": true --
   the batched SoA lane produced byte-identical results to the
   unbatched reference lane. Any false is an immediate failure
   regardless of speed.
2. Regression: the best batched speedup of the fresh run must not
   fall below the committed baseline's best speedup times a slack
   factor. Speedup is a same-machine ratio (unbatched wall over
   batched wall), so it transfers across hosts far better than raw
   wall time; the slack absorbs shared-runner noise, not real
   regressions.

Besides bench_hot_path's native {"batched": [...]} shape (which
bench_explore reuses), the gate accepts bench_corun's shape -- a
single {"parallel": {...}} lane plus results_identical /
byte_identical booleans -- by normalizing it to one batched point
whose "identical" is the conjunction of both booleans.

Usage: tools/check_bench.py fresh.json baseline.json [--slack 0.85]
"""

import argparse
import json
import sys


def points(result):
    """The bench's timed points, normalized to the batched shape."""
    if "batched" in result:
        return result["batched"]
    if "parallel" in result:
        lane = result["parallel"]
        return [
            {
                "batch_ops": lane.get("jobs"),
                "speedup": lane["speedup"],
                "identical": bool(result.get("results_identical"))
                and bool(result.get("byte_identical")),
            }
        ]
    return []


def best_speedup(result):
    timed = points(result)
    if not timed:
        raise SystemExit("no batched points in bench result")
    return max(float(p["speedup"]) for p in timed)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="bench JSON from this CI run")
    parser.add_argument("baseline", help="committed bench JSON")
    parser.add_argument(
        "--slack",
        type=float,
        default=0.85,
        help="fresh best speedup must reach this fraction of the "
        "baseline best (default: %(default)s)",
    )
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    failures = []
    for point in points(fresh):
        if not point.get("identical", False):
            failures.append(
                "batch_ops=%s: identical is not true -- the batched "
                "lane diverged from the reference lane"
                % point.get("batch_ops")
            )

    fresh_best = best_speedup(fresh)
    floor = best_speedup(baseline) * args.slack
    if fresh_best < floor:
        failures.append(
            "best speedup %.3fx is below the regression floor %.3fx "
            "(committed baseline %.3fx * slack %.2f)"
            % (fresh_best, floor, best_speedup(baseline), args.slack)
        )

    if failures:
        for failure in failures:
            print("check_bench: FAIL: %s" % failure, file=sys.stderr)
        return 1

    print(
        "check_bench: OK: all points identical, best speedup %.3fx "
        "(floor %.3fx)" % (fresh_best, floor)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
