#!/usr/bin/env python3
"""Checks that intra-repo markdown links and file references resolve.

Scans every tracked *.md file for inline links [text](target) and
bare `path` references that look like repo files, and fails (exit 1)
listing every target that does not exist. External links (http/https/
mailto) are ignored -- CI must not depend on network reachability.

Usage: tools/check_links.py [repo_root]
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# `path/to/file.ext` style references inside backticks; extensions we
# expect to exist as files in the repo. Trailing wildcard/globs are
# skipped below.
CODE_REF = re.compile(r"`([A-Za-z0-9_./-]+\.(?:md|cc|hh|h|py|cpp|yml))`")
EXTERNAL = ("http://", "https://", "mailto:", "#")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in (".git", "build", ".github") and
            not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    targets = []
    for match in INLINE_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        targets.append(target.split("#")[0])
    for match in CODE_REF.finditer(text):
        ref = match.group(1)
        # Only treat it as a path claim when it points into the tree.
        if "/" in ref and "*" not in ref:
            targets.append(ref)
    for target in targets:
        if not target:
            continue
        # Inline links resolve relative to the file; code refs
        # resolve from the repo root or src/ (docs conventionally
        # write source paths src/-relative, e.g. `trace/synthetic.cc`).
        candidates = [
            os.path.normpath(os.path.join(os.path.dirname(path), target)),
            os.path.normpath(os.path.join(root, target)),
            os.path.normpath(os.path.join(root, "src", target)),
        ]
        if not any(os.path.exists(c) for c in candidates):
            errors.append((os.path.relpath(path, root), target))
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    count = 0
    for path in md_files(root):
        count += 1
        errors.extend(check_file(path, root))
    if errors:
        for source, target in errors:
            print(f"BROKEN  {source}: {target}")
        print(f"{len(errors)} broken reference(s) in {count} markdown "
              "file(s)")
        return 1
    print(f"OK  all intra-repo references resolve ({count} markdown "
          "file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
