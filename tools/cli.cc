#include "tools/cli.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include <fstream>

#include "core/characterizer.hh"
#include "util/logging.hh"
#include "core/phase.hh"
#include "core/subset.hh"
#include "corun/analysis.hh"
#include "corun/plan.hh"
#include "corun/runner.hh"
#include "corun/store.hh"
#include "explore/plan.hh"
#include "explore/runner.hh"
#include "sim/energy.hh"
#include "sim/simulator.hh"
#include "suite/arena_store.hh"
#include "suite/journal.hh"
#include "suite/result_cache.hh"
#include "telemetry/progress.hh"
#include "telemetry/sampler.hh"
#include "telemetry/sink.hh"
#include "trace/file.hh"
#include "trace/synthetic.hh"
#include "util/table.hh"
#include "util/units.hh"
#include "workloads/builder.hh"

namespace spec17 {
namespace cli {

namespace {

using workloads::InputSize;
using workloads::SuiteGeneration;

/** Maps --suite= to a generation; defaults to CPU2017. */
SuiteGeneration
generationOf(const CommandLine &command, std::ostream &err, bool &ok)
{
    const std::string suite = command.flag("suite", "cpu2017");
    ok = true;
    if (suite == "cpu2017")
        return SuiteGeneration::Cpu2017;
    if (suite == "cpu2006")
        return SuiteGeneration::Cpu2006;
    err << "error: unknown --suite '" << suite
        << "' (want cpu2017|cpu2006)\n";
    ok = false;
    return SuiteGeneration::Cpu2017;
}

/** Maps --size= to an input size; defaults to ref. */
InputSize
sizeOf(const CommandLine &command, std::ostream &err, bool &ok)
{
    const std::string size = command.flag("size", "ref");
    ok = true;
    if (size == "test")
        return InputSize::Test;
    if (size == "train")
        return InputSize::Train;
    if (size == "ref")
        return InputSize::Ref;
    err << "error: unknown --size '" << size
        << "' (want test|train|ref)\n";
    ok = false;
    return InputSize::Ref;
}

suite::RunnerOptions
runnerOptionsOf(const CommandLine &command)
{
    suite::RunnerOptions options;
    options.sampleOps = command.flagUint("sample", 1'000'000);
    options.warmupOps = command.flagUint("warmup", 300'000);
    if (command.hasFlag("predictor"))
        options.system.branchPredictor = command.flag("predictor");
    if (command.hasFlag("prefetcher"))
        options.system.hierarchy.prefetcher =
            command.flag("prefetcher");
    // Microarchitecture-mechanism knobs (all config-key members; see
    // docs/uarch.md). runCommand() has already rejected unknown names
    // and contradictory combinations with contained errors.
    if (command.hasFlag("l2-prefetcher"))
        options.system.hierarchy.l2Prefetcher =
            command.flag("l2-prefetcher");
    if (command.hasFlag("way-predictor"))
        options.system.hierarchy.l1d.wayPredictor =
            sim::wayPredictorFromName(command.flag("way-predictor"));
    options.system.hierarchy.l1d.wayMispredictPenalty =
        static_cast<unsigned>(command.flagUint(
            "way-penalty",
            options.system.hierarchy.l1d.wayMispredictPenalty));
    options.system.hierarchy.streamDegree = static_cast<unsigned>(
        command.flagUint("stream-degree",
                         options.system.hierarchy.streamDegree));
    options.system.hierarchy.streamDistance = static_cast<unsigned>(
        command.flagUint("stream-distance",
                         options.system.hierarchy.streamDistance));
    options.system.tage.historyTables = static_cast<unsigned>(
        command.flagUint("tage-tables",
                         options.system.tage.historyTables));
    options.maxRetries =
        static_cast<unsigned>(command.flagUint("retries", 0));
    options.pairDeadlineOps = command.flagUint("pair-deadline", 0);
    options.pairDeadlineMs = command.flagUint("pair-deadline-ms", 0);
    options.retryBackoffMs = command.flagUint("retry-backoff-ms", 0);
    options.sampleIntervalOps =
        command.flagUint("sample-interval-ops", 0);
    options.jobs = static_cast<unsigned>(command.flagUint("jobs", 1));
    // Lane knobs (results-invariant; excluded from the config key).
    // runCommand() has already rejected an explicit --batch-ops=0.
    options.batchOps = command.flagUint("batch-ops", 0);
    options.unbatchedStepping = command.hasFlag("unbatched-stepping");
    return options;
}

/**
 * Builds the trace arena store for --trace-arena-mb (default 512 MiB;
 * 0 disables capture/replay), or nullptr when disabled. The caller
 * owns the store and must keep it alive for the runners' lifetime.
 * Whether a store is attached never changes result bytes (replay is
 * draw-for-draw identical to generation), so none of these knobs
 * enter result-cache config keys.
 */
std::unique_ptr<suite::TraceArenaStore>
arenaStoreOf(const CommandLine &command)
{
    const std::uint64_t budget_mb =
        command.flagUint("trace-arena-mb", 512);
    if (budget_mb == 0)
        return nullptr;
    return std::make_unique<suite::TraceArenaStore>(
        budget_mb * kMiB, command.flag("arena-spill-dir", ""));
}

/**
 * Builds the file sink for --telemetry-out, or nullptr when the flag
 * is absent. The caller owns the sink and must keep it alive for the
 * runner's lifetime.
 */
std::unique_ptr<telemetry::FileSink>
telemetrySinkOf(const CommandLine &command, std::ostream &err, bool &ok)
{
    ok = true;
    if (!command.hasFlag("telemetry-out"))
        return nullptr;
    const std::string format = command.flag("telemetry-format", "csv");
    telemetry::FileSink::Format sink_format;
    if (format == "csv") {
        sink_format = telemetry::FileSink::Format::Csv;
    } else if (format == "jsonl") {
        sink_format = telemetry::FileSink::Format::Jsonl;
    } else {
        err << "error: unknown --telemetry-format '" << format
            << "' (want csv|jsonl)\n";
        ok = false;
        return nullptr;
    }
    if (command.flagUint("sample-interval-ops", 0) == 0) {
        warn("--telemetry-out without --sample-interval-ops "
             "produces no series");
    }
    return std::make_unique<telemetry::FileSink>(
        command.flag("telemetry-out"), sink_format);
}

/**
 * Tabulates pairs that errored or needed retries -- the equivalent of
 * the paper's "benchmarks excluded from aggregate analysis" note,
 * plus recovered transients so flaky sweeps are visible.
 */
void
renderFailureSummary(const std::vector<const suite::PairResult *>
                         &affected,
                     std::ostream &out)
{
    if (affected.empty())
        return;
    TextTable table({"pair", "status", "attempts", "category",
                     "ops done", "last failure"});
    for (const auto *result : affected) {
        const suite::FailureRecord *last =
            result->failures.empty() ? nullptr
                                     : &result->failures.back();
        table.addRow({result->name,
                      result->errored
                          ? (result->failures.empty()
                                 ? "errored-in-paper" : "errored")
                          : "recovered",
                      std::to_string(result->attempts),
                      last ? failureCategoryName(last->category) : "-",
                      last ? fmtCount(last->opsCompleted) : "-",
                      last ? last->message : "-"});
    }
    out << "\nfailure summary (" << affected.size()
        << " pair(s) errored or retried; errored pairs are excluded "
           "from aggregates):\n";
    table.render(out);
}

int
cmdConfig(const CommandLine &command, std::ostream &out)
{
    out << runnerOptionsOf(command).system.describe();
    return 0;
}

int
cmdList(const CommandLine &command, std::ostream &out,
        std::ostream &err)
{
    bool ok = false;
    const SuiteGeneration generation = generationOf(command, err, ok);
    if (!ok)
        return 2;
    const InputSize size = sizeOf(command, err, ok);
    if (!ok)
        return 2;
    const auto &suite = generation == SuiteGeneration::Cpu2017
        ? workloads::cpu2017Suite()
        : workloads::cpu2006Suite();

    TextTable table({"pair", "mini-suite", "language", "threads",
                     "instr (B)", "RSS", "status"});
    const auto pairs = enumeratePairs(suite, size);
    for (const auto &pair : pairs) {
        const auto &profile = *pair.profile;
        table.addRow({pair.displayName(),
                      workloads::suiteKindName(profile.suite),
                      profile.language,
                      std::to_string(profile.numThreads),
                      fmtDouble(profile.instrBillions(size), 1),
                      fmtBytes(profile.rssMiB(size) * double(kMiB)),
                      profile.isErrored(size, pair.inputIndex)
                          ? "errored-in-paper"
                          : "ok"});
    }
    table.render(out);
    out << pairs.size() << " application-input pairs\n";
    return 0;
}

int
cmdStat(const CommandLine &command, std::ostream &out,
        std::ostream &err)
{
    if (command.positional.size() < 2) {
        err << "error: stat needs an application name (try: spec17 "
               "stat 505.mcf_r)\n";
        return 2;
    }
    bool ok = false;
    const SuiteGeneration generation = generationOf(command, err, ok);
    if (!ok)
        return 2;
    const InputSize size = sizeOf(command, err, ok);
    if (!ok)
        return 2;
    const auto &suite = generation == SuiteGeneration::Cpu2017
        ? workloads::cpu2017Suite()
        : workloads::cpu2006Suite();
    const std::string &name = command.positional[1];
    const workloads::WorkloadProfile *profile = nullptr;
    for (const auto &candidate : suite) {
        if (candidate.name == name)
            profile = &candidate;
    }
    if (profile == nullptr) {
        err << "error: no application named '" << name
            << "' (try: spec17 list)\n";
        return 2;
    }
    const unsigned input =
        static_cast<unsigned>(command.flagUint("input", 1)) - 1;
    const unsigned available =
        profile->numInputs[static_cast<std::size_t>(size)];
    if (input >= available) {
        err << "error: " << name << " has " << available << " "
            << workloads::inputSizeName(size) << " inputs\n";
        return 2;
    }

    suite::RunnerOptions runner_options = runnerOptionsOf(command);
    bool sink_ok = false;
    const auto sink = telemetrySinkOf(command, err, sink_ok);
    if (!sink_ok)
        return 2;
    runner_options.telemetrySink = sink.get();
    const auto arena_store = arenaStoreOf(command);
    runner_options.arenaStore = arena_store.get();
    suite::SuiteRunner runner(runner_options);
    const auto result = runner.runPair({profile, size, input});

    out << "perf-style counters for " << result.name << " ("
        << workloads::inputSizeName(size) << "):\n";
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto event = static_cast<counters::PerfEvent>(e);
        out << "  " << fmtCount(result.counters.get(event)) << "\t"
            << counters::perfEventName(event) << "\n";
    }
    const auto metrics = core::deriveMetrics(result);
    out << "\n  IPC " << fmtDouble(metrics.ipc, 3) << ", mispredict "
        << fmtDouble(metrics.mispredictPct, 2) << "%, L1/L2/L3 miss "
        << fmtDouble(metrics.l1MissPct, 2) << "/"
        << fmtDouble(metrics.l2MissPct, 2) << "/"
        << fmtDouble(metrics.l3MissPct, 2) << "%\n";
    const auto energy = sim::computeEnergy(
        result.counters,
        double(result.counters.get(
            counters::PerfEvent::CpuClkUnhaltedRefTsc)));
    out << "  energy (model): "
        << fmtDouble(energy.epiNj(double(result.counters.get(
               counters::PerfEvent::InstRetiredAny))), 2)
        << " nJ/instr, DRAM share "
        << fmtDouble(100.0 * energy.dramJ / energy.totalJ(), 1)
        << "%\n";
    out << "  estimated native run: " << fmtDouble(metrics.seconds, 1)
        << " s for " << fmtDouble(metrics.instrBillions, 1)
        << " billion instructions\n";
    if (result.series) {
        // The first phase-behaviour signal: how much interval IPC
        // wobbles over the measured window.
        out << "  telemetry: " << result.series->numIntervals()
            << " interval(s) of "
            << fmtCount(result.series->intervalOps)
            << " ops, interval IPC CoV "
            << fmtDouble(telemetry::coefficientOfVariation(
                             *result.series, "ipc"),
                         3)
            << "\n";
        if (sink)
            out << "  telemetry series written to "
                << sink->pathFor(result.name) << "\n";
    }
    return 0;
}

int
cmdEvents(const CommandLine &, std::ostream &out)
{
    // The paper generates its candidate counter list with
    // `perf list`; this is the simulated equivalent.
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        out << counters::perfEventName(
            static_cast<counters::PerfEvent>(e))
            << "\n";
    }
    return 0;
}

int
cmdValidate(const CommandLine &command, std::ostream &out,
            std::ostream &err)
{
    bool ok = false;
    const SuiteGeneration generation = generationOf(command, err, ok);
    if (!ok)
        return 2;
    const auto &suite = generation == SuiteGeneration::Cpu2017
        ? workloads::cpu2017Suite()
        : workloads::cpu2006Suite();
    suite::RunnerOptions options = runnerOptionsOf(command);
    // Calibration checks need less precision than the study runs.
    options.sampleOps = command.flagUint("sample", 400'000);
    options.warmupOps = command.flagUint("warmup", 150'000);
    suite::SuiteRunner runner(options);

    const double tolerance_pp =
        double(command.flagUint("tolerance", 12));
    TextTable table({"application", "L1m% tgt/got", "L2m% tgt/got",
                     "L3m% tgt/got", "misp% tgt/got", "worst dev"});
    int failures = 0;
    for (const auto &profile : suite) {
        const auto result = runner.runPair(
            {&profile, InputSize::Ref, 0});
        const auto metrics = core::deriveMetrics(result);
        const double targets[4] = {
            100.0 * profile.memory.l1MissRate,
            100.0 * profile.memory.l2MissRate,
            100.0 * profile.memory.l3MissRate,
            100.0 * profile.branches.mispredictRate,
        };
        const double got[4] = {metrics.l1MissPct, metrics.l2MissPct,
                               metrics.l3MissPct,
                               metrics.mispredictPct};
        double worst = 0.0;
        for (int i = 0; i < 4; ++i)
            worst = std::max(worst, std::abs(got[i] - targets[i]));
        failures += worst > tolerance_pp;
        auto cell = [&](int i) {
            return fmtDouble(targets[i], 1) + " / "
                + fmtDouble(got[i], 1);
        };
        table.addRow({profile.name, cell(0), cell(1), cell(2),
                      cell(3),
                      fmtDouble(worst, 1)
                          + (worst > tolerance_pp ? " !" : "")});
    }
    table.render(out);
    out << failures << " of " << suite.size()
        << " applications deviate more than " << tolerance_pp
        << "pp from their profile targets\n";
    return command.hasFlag("strict") && failures > 0 ? 1 : 0;
}

int
cmdRecord(const CommandLine &command, std::ostream &out,
          std::ostream &err)
{
    if (command.positional.size() < 2) {
        err << "error: record needs an application name\n";
        return 2;
    }
    bool ok = false;
    const InputSize size = sizeOf(command, err, ok);
    if (!ok)
        return 2;
    const std::string &name = command.positional[1];
    const auto &suite = workloads::cpu2017Suite();
    const workloads::WorkloadProfile *profile = nullptr;
    for (const auto &candidate : suite) {
        if (candidate.name == name)
            profile = &candidate;
    }
    if (profile == nullptr) {
        err << "error: no application named '" << name << "'\n";
        return 2;
    }
    const std::string path =
        command.flag("out", name + "." + inputSizeName(size) + ".s17t");
    workloads::BuildOptions build;
    build.sampleOps = command.flagUint("sample", 1'000'000);
    trace::SyntheticTraceGenerator source(
        workloads::buildTraceParams({profile, size, 0}, build, 0));
    const std::uint64_t written = trace::writeTrace(path, source);
    out << "wrote " << fmtCount(written) << " micro-ops to " << path
        << "\n";
    return 0;
}

int
cmdReplay(const CommandLine &command, std::ostream &out,
          std::ostream &err)
{
    if (command.positional.size() < 2) {
        err << "error: replay needs a trace file path\n";
        return 2;
    }
    trace::FileTrace source(command.positional[1]);
    sim::CpuSimulator simulator(runnerOptionsOf(command).system);
    const sim::SimResult result = simulator.run(source);

    out << "replayed " << fmtCount(source.size())
        << " micro-ops from " << command.positional[1] << "\n";
    for (std::size_t e = 0; e < counters::kNumPerfEvents; ++e) {
        const auto event = static_cast<counters::PerfEvent>(e);
        out << "  " << fmtCount(result.counters.get(event)) << "\t"
            << counters::perfEventName(event) << "\n";
    }
    out << "\n  IPC " << fmtDouble(result.ipc(), 3) << " over "
        << fmtDouble(result.cycles, 0) << " cycles\n";
    return 0;
}

int
cmdCharacterize(const CommandLine &command, std::ostream &out,
                std::ostream &err)
{
    bool ok = false;
    const SuiteGeneration generation = generationOf(command, err, ok);
    if (!ok)
        return 2;
    const InputSize size = sizeOf(command, err, ok);
    if (!ok)
        return 2;

    core::CharacterizerOptions options;
    options.runner = runnerOptionsOf(command);
    bool sink_ok = false;
    const auto sink = telemetrySinkOf(command, err, sink_ok);
    if (!sink_ok)
        return 2;
    options.runner.telemetrySink = sink.get();
    const auto arena_store = arenaStoreOf(command);
    options.runner.arenaStore = arena_store.get();
    if (command.hasFlag("no-cache"))
        options.cachePath.clear();
    options.resume = command.hasFlag("resume");
    if (command.hasFlag("shard")) {
        const auto shard = suite::ShardSpec::parse(
            command.flag("shard"));
        if (!shard) {
            err << "error: --shard wants K/N with 1 <= K <= N, got '"
                << command.flag("shard") << "'\n";
            return 2;
        }
        options.shard = *shard;
    }
    telemetry::ProgressReporter::Options progress_options;
    if (options.shard.active())
        progress_options.shardLabel = options.shard.label();
    telemetry::ProgressReporter progress(progress_options);
    if (command.hasFlag("progress")) {
        options.pairObserver = [&progress](
                                   const suite::PairResult &result,
                                   std::size_t index,
                                   std::size_t total) {
            progress.onItemDone(
                result.name, index, total,
                result.counters.get(
                    counters::PerfEvent::InstRetiredAny),
                result.attempts, result.errored, result.replayed);
        };
    }
    core::Characterizer session(options);
    std::vector<core::Metrics> metrics;
    try {
        metrics = session.metrics(generation, size);
    } catch (const suite::JournalConfigMismatchError &e) {
        // A --resume against another campaign's journal: refusing is
        // the whole point -- replaying it would silently splice two
        // configurations into one result set.
        err << "error: " << e.what() << "\n";
        return 2;
    }

    // With sampling enabled, surface the per-pair interval-IPC
    // coefficient of variation (series exist only for pairs actually
    // simulated this session; cache replays show "-").
    const bool sampled = options.runner.sampleIntervalOps > 0;
    std::map<std::string, double> ipc_cov;
    if (sampled) {
        for (const auto &result : session.results(generation, size)) {
            if (result.series) {
                ipc_cov[result.name] =
                    telemetry::coefficientOfVariation(*result.series,
                                                      "ipc");
            }
        }
    }

    std::vector<std::string> header = {"pair", "IPC", "ld%", "st%",
                                       "br%", "L1m%", "L2m%", "L3m%",
                                       "misp%", "RSS GiB", "time s"};
    if (sampled)
        header.push_back("IPC CoV");
    TextTable table(header);
    for (const auto &m : metrics) {
        if (m.errored)
            continue;
        std::vector<std::string> row = {m.name, fmtDouble(m.ipc, 3),
                      fmtDouble(m.loadPct, 2),
                      fmtDouble(m.storePct, 2),
                      fmtDouble(m.branchPct, 2),
                      fmtDouble(m.l1MissPct, 2),
                      fmtDouble(m.l2MissPct, 2),
                      fmtDouble(m.l3MissPct, 2),
                      fmtDouble(m.mispredictPct, 2),
                      fmtDouble(m.rssGiB, 3),
                      fmtDouble(m.seconds, 1)};
        if (sampled) {
            row.push_back(ipc_cov.count(m.name)
                              ? fmtDouble(ipc_cov[m.name], 3)
                              : "-");
        }
        table.addRow(row);
    }
    if (command.hasFlag("csv")) {
        table.renderCsv(out);
    } else {
        table.render(out);
        renderFailureSummary(session.failures(generation, size), out);
    }
    return 0;
}

/** Demo subset for co-run sweeps when --apps is absent: two memory
 *  bullies (mcf, lbm) against two cache-light apps (leela,
 *  exchange2), the smallest set that shows the full sensitivity/
 *  aggressiveness spread. */
const char *const kCorunDemoApps[] = {"505.mcf_r", "519.lbm_r",
                                      "541.leela_r", "548.exchange2_r"};

int
cmdCorun(const CommandLine &command, std::ostream &out,
         std::ostream &err)
{
    bool ok = false;
    const InputSize size = sizeOf(command, err, ok);
    if (!ok)
        return 2;
    const auto &suite = workloads::cpu2017Suite();

    // Resolve the application subset with contained errors: a typo'd
    // or threaded (speed) app is a usage error, not a panic.
    std::vector<std::string> apps;
    if (command.hasFlag("apps")) {
        std::string cell;
        std::istringstream stream(command.flag("apps"));
        while (std::getline(stream, cell, ','))
            if (!cell.empty())
                apps.push_back(cell);
    } else {
        apps.assign(std::begin(kCorunDemoApps),
                    std::end(kCorunDemoApps));
    }
    for (const std::string &name : apps) {
        const workloads::WorkloadProfile *profile = nullptr;
        for (const auto &candidate : suite)
            if (candidate.name == name)
                profile = &candidate;
        if (profile == nullptr) {
            err << "error: no application named '" << name
                << "' (try: spec17 list)\n";
            return 2;
        }
        if (profile->numThreads != 1) {
            err << "error: " << name << " runs "
                << profile->numThreads
                << " threads; co-run groups take single-threaded "
                   "(rate) applications\n";
            return 2;
        }
    }

    corun::CorunOptions options;
    options.sampleOps = command.flagUint("sample", 300'000);
    options.warmupOps = command.flagUint("warmup", 100'000);
    options.chunkOps = command.flagUint("corun-chunk", 10'000);
    options.jobs =
        static_cast<unsigned>(command.flagUint("jobs", 1));
    options.size = size;
    if (command.hasFlag("predictor"))
        options.system.branchPredictor = command.flag("predictor");
    if (command.hasFlag("prefetcher"))
        options.system.hierarchy.prefetcher =
            command.flag("prefetcher");
    if (options.chunkOps == 0) {
        err << "error: --corun-chunk must be positive\n";
        return 2;
    }
    const auto arena_store = arenaStoreOf(command);
    options.arenaStore = arena_store.get();

    corun::PlanOptions plan;
    plan.apps = apps;
    plan.groupSize = command.hasFlag("quartets") ? 4 : 2;
    plan.includeSelf = !command.hasFlag("no-self");
    plan.partitionSweep = command.hasFlag("partition");
    plan.l3Ways = options.system.hierarchy.l3.assoc;
    if (plan.partitionSweep && plan.groupSize != 2) {
        err << "error: --partition sweeps pairs, not quartets\n";
        return 2;
    }
    if (apps.size() < (plan.groupSize == 2 && plan.includeSelf
                           ? 1u
                           : plan.groupSize)) {
        err << "error: " << apps.size()
            << " application(s) cannot form groups of "
            << plan.groupSize << "\n";
        return 2;
    }
    const std::vector<corun::CorunGroup> groups =
        corun::planGroups(suite, plan);

    corun::CorunRunner runner(options);
    corun::CorunStore store(command.hasFlag("no-cache")
                                ? ""
                                : suite::ResultCache::defaultPath(),
                            command.hasFlag("resume"));
    suite::ShardSpec shard;
    if (command.hasFlag("shard")) {
        const auto parsed =
            suite::ShardSpec::parse(command.flag("shard"));
        if (!parsed) {
            err << "error: --shard wants K/N with 1 <= K <= N, got '"
                << command.flag("shard") << "'\n";
            return 2;
        }
        shard = *parsed;
        store.setShard(shard);
    }

    telemetry::ProgressReporter::Options progress_options;
    if (shard.active())
        progress_options.shardLabel = shard.label();
    telemetry::ProgressReporter progress(progress_options);
    corun::CorunRunner::GroupObserver observer;
    if (command.hasFlag("progress")) {
        observer = [&progress](const corun::CorunResult &result,
                               std::size_t index, std::size_t total) {
            std::uint64_t ops = 0;
            for (const auto &member : result.members)
                ops += member.instructions;
            progress.onItemDone(result.name, index, total, ops, 1,
                                false, result.replayed);
        };
    }

    std::vector<corun::CorunResult> results;
    try {
        results = store.runOrLoad(runner, groups, observer);
    } catch (const corun::CorunJournalMismatchError &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    if (command.hasFlag("export-jsonl")) {
        const std::string path = command.flag("export-jsonl");
        std::ofstream jsonl(path, std::ios::trunc | std::ios::binary);
        if (!jsonl) {
            err << "error: cannot write " << path << "\n";
            return 1;
        }
        jsonl.precision(17);
        for (const auto &result : results) {
            jsonl << "{\"group\":\"" << result.name << "\","
                  << "\"partition\":";
            if (result.masks.empty())
                jsonl << "null";
            else
                jsonl << "\"" << corun::maskSetLabel(result.masks)
                      << "\"";
            jsonl << ",\"throughput\":" << result.throughput()
                  << ",\"worst_slowdown\":" << result.worstSlowdown()
                  << ",\"members\":[";
            for (std::size_t c = 0; c < result.members.size(); ++c) {
                const auto &m = result.members[c];
                jsonl << (c == 0 ? "" : ",") << "{\"app\":\"" << m.name
                      << "\",\"slowdown\":" << m.slowdown()
                      << ",\"cycles\":" << m.cycles
                      << ",\"solo_cycles\":" << m.soloCycles
                      << ",\"instructions\":" << m.instructions
                      << ",\"l3_hits\":" << m.l3Hits
                      << ",\"l3_misses\":" << m.l3Misses
                      << ",\"evictions_inflicted\":"
                      << m.evictionsInflicted
                      << ",\"evictions_suffered\":"
                      << m.evictionsSuffered
                      << ",\"occupancy_lines\":" << m.occupancyLines
                      << "}";
            }
            jsonl << "]}\n";
        }
        out << "wrote " << results.size() << " group record(s) to "
            << path << "\n";
    }

    // Member-level breakdown of the free-for-all groups (partitioned
    // variants feed the Pareto table below instead).
    TextTable member_table({"group", "member", "slowdown", "IPC",
                            "L3 miss%", "ev. suffered",
                            "ev. inflicted", "L3 lines"});
    for (const auto &result : results) {
        if (!result.masks.empty())
            continue;
        for (const auto &m : result.members) {
            const std::uint64_t l3_acc = m.l3Hits + m.l3Misses;
            member_table.addRow(
                {result.name, m.name, fmtDouble(m.slowdown(), 3),
                 fmtDouble(m.ipc(), 3),
                 l3_acc > 0 ? fmtDouble(100.0 * double(m.l3Misses)
                                            / double(l3_acc),
                                        1)
                            : "-",
                 fmtCount(m.evictionsSuffered),
                 fmtCount(m.evictionsInflicted),
                 fmtCount(m.occupancyLines)});
        }
    }
    if (command.hasFlag("csv")) {
        member_table.renderCsv(out);
        return 0;
    }
    out << "co-run interference (" << results.size() << " group(s), "
        << workloads::inputSizeName(size) << "):\n";
    member_table.render(out);

    const corun::SlowdownMatrix matrix = corun::buildMatrix(results);
    if (!matrix.apps.empty() && plan.groupSize == 2) {
        std::vector<std::string> header = {"victim \\ aggressor"};
        header.insert(header.end(), matrix.apps.begin(),
                      matrix.apps.end());
        TextTable matrix_table(header);
        for (std::size_t v = 0; v < matrix.apps.size(); ++v) {
            std::vector<std::string> row = {matrix.apps[v]};
            for (std::size_t a = 0; a < matrix.apps.size(); ++a)
                row.push_back(matrix.slowdown[v][a] > 0.0
                                  ? fmtDouble(matrix.slowdown[v][a], 3)
                                  : "-");
            matrix_table.addRow(row);
        }
        out << "\nslowdown matrix (co-run cycles / solo cycles):\n";
        matrix_table.render(out);

        std::vector<corun::AppScore> scores =
            corun::scoreApps(matrix);
        std::sort(scores.begin(), scores.end(),
                  [](const corun::AppScore &a,
                     const corun::AppScore &b) {
                      return a.sensitivity > b.sensitivity;
                  });
        TextTable score_table(
            {"application", "sensitivity", "aggressiveness"});
        for (const auto &score : scores)
            score_table.addRow({score.app,
                                fmtDouble(score.sensitivity, 3),
                                fmtDouble(score.aggressiveness, 3)});
        out << "\ninterference scores (mean slowdown suffered / "
               "inflicted):\n";
        score_table.render(out);
    }

    if (plan.partitionSweep) {
        const std::vector<corun::ParetoRow> pareto =
            corun::paretoTable(results);
        TextTable pareto_table({"pair", "partition", "throughput",
                                "worst slowdown", "Pareto"});
        for (const auto &row : pareto)
            pareto_table.addRow({row.pair, row.partition,
                                 fmtDouble(row.throughput, 3),
                                 fmtDouble(row.worstSlowdown, 3),
                                 row.dominated ? "" : "*"});
        out << "\nCAT way-partition Pareto sweep (* = "
               "non-dominated within its pair):\n";
        pareto_table.render(out);
    }
    return 0;
}

/** Renders the explorer's Pareto table into @p table. */
void
renderExploreTable(const std::vector<explore::PointResult> &results,
                   TextTable &table)
{
    for (const auto &r : results) {
        table.addRow({r.point.axis, r.point.label,
                      fmtDouble(r.sse, 3),
                      fmtDouble(r.point.costBits, 0),
                      fmtDouble(r.meanIpc, 3),
                      std::to_string(r.pairs),
                      std::to_string(r.errored),
                      r.dominated ? "" : (r.knee ? "knee" : "*")});
    }
}

int
cmdExplore(const CommandLine &command, std::ostream &out,
           std::ostream &err)
{
    // Plan-shape flags first: --axis sweeps one mechanism axis,
    // --multi-axis crosses (or descends) two or more axes including
    // the geometry grids. Contradictions are contained exit-2 usage
    // errors, caught before any simulation starts.
    const std::string axis = command.flag("axis");
    std::vector<std::string> multi;
    if (command.hasFlag("multi-axis")) {
        std::string cell;
        std::istringstream stream(command.flag("multi-axis"));
        while (std::getline(stream, cell, ','))
            if (!cell.empty())
                multi.push_back(cell);
    }
    const std::string mode = command.flag("multi-axis-mode", "product");
    if (command.hasFlag("multi-axis-mode")
        && !command.hasFlag("multi-axis")) {
        err << "error: --multi-axis-mode without --multi-axis has "
               "nothing to apply to\n";
        return 2;
    }
    if (mode != "product" && mode != "descent") {
        err << "error: unknown --multi-axis-mode '" << mode
            << "' (want product|descent)\n";
        return 2;
    }
    if (command.hasFlag("axis") && command.hasFlag("multi-axis")) {
        err << "error: --axis is contradictory with --multi-axis "
               "(one sweep shape per run)\n";
        return 2;
    }
    if (command.hasFlag("multi-axis")) {
        if (multi.size() < 2) {
            err << "error: --multi-axis wants two or more "
                   "comma-separated axes (use --axis for one)\n";
            return 2;
        }
        for (std::size_t i = 0; i < multi.size(); ++i) {
            for (std::size_t j = i + 1; j < multi.size(); ++j) {
                if (multi[i] == multi[j]) {
                    err << "error: --multi-axis repeats axis '"
                        << multi[i] << "'\n";
                    return 2;
                }
            }
            if (!explore::isAxis(multi[i])
                && !explore::isGeometryAxis(multi[i])) {
                err << "error: unknown --multi-axis axis '" << multi[i]
                    << "' (want one of";
                for (const std::string &name : explore::axisNames())
                    err << " " << name;
                for (const std::string &name :
                     explore::geometryAxisNames())
                    err << " " << name;
                err << ")\n";
                return 2;
            }
        }
    } else if (!explore::isAxis(axis)) {
        err << "error: explore needs --axis=AXIS with AXIS one of";
        for (const std::string &name : explore::axisNames())
            err << " " << name;
        err << (axis.empty() ? "" : "; got '" + axis + "'") << "\n";
        return 2;
    }
    bool ok = false;
    const SuiteGeneration generation = generationOf(command, err, ok);
    if (!ok)
        return 2;
    const InputSize size = sizeOf(command, err, ok);
    if (!ok)
        return 2;

    explore::ExploreOptions options;
    options.runner = runnerOptionsOf(command);
    // Exploration trades per-pair precision for breadth, like
    // validate: the axis deltas dominate sampling noise well before
    // the study-run sample sizes.
    options.runner.sampleOps = command.flagUint("sample", 400'000);
    options.runner.warmupOps = command.flagUint("warmup", 150'000);
    const auto arena_store = arenaStoreOf(command);
    options.runner.arenaStore = arena_store.get();
    options.generation = generation;
    options.size = size;
    // A geometry grid over a mechanism the configured base disables
    // would score identical points: contained usage error, with the
    // planner's own explanation.
    for (const std::string &name : multi) {
        const std::string plan_error =
            explore::axisPlanError(name, options.runner.system);
        if (!plan_error.empty()) {
            err << "error: " << plan_error << "\n";
            return 2;
        }
    }
    if (command.hasFlag("no-cache"))
        options.cachePath.clear();
    options.resume = command.hasFlag("resume");
    if (command.hasFlag("shard")) {
        const auto shard =
            suite::ShardSpec::parse(command.flag("shard"));
        if (!shard) {
            err << "error: --shard wants K/N with 1 <= K <= N, got '"
                << command.flag("shard") << "'\n";
            return 2;
        }
        options.shard = *shard;
    }
    telemetry::ProgressReporter::Options progress_options;
    if (options.shard.active())
        progress_options.shardLabel = options.shard.label();
    telemetry::ProgressReporter progress(progress_options);
    if (command.hasFlag("progress")) {
        options.pairObserver = [&progress](
                                   const suite::PairResult &result,
                                   std::size_t index,
                                   std::size_t total) {
            progress.onItemDone(
                result.name, index, total,
                result.counters.get(
                    counters::PerfEvent::InstRetiredAny),
                result.attempts, result.errored, result.replayed);
        };
    }

    explore::ExploreRunner runner(options);
    std::vector<explore::PointResult> results;
    std::vector<explore::DescentStep> descent;
    try {
        if (multi.empty()) {
            results = runner.runAxis(axis);
        } else if (mode == "product") {
            results = runner.runCross(multi);
        } else {
            descent = runner.runDescent(multi);
            // Flatten for the shared renderers; each stage keeps its
            // own Pareto marks (the axis column tells stages apart).
            for (const auto &step : descent)
                results.insert(results.end(), step.points.begin(),
                               step.points.end());
        }
    } catch (const suite::JournalConfigMismatchError &e) {
        err << "error: " << e.what() << "\n";
        return 2;
    }

    if (command.hasFlag("export-jsonl")) {
        const std::string path = command.flag("export-jsonl");
        std::ofstream jsonl(path, std::ios::trunc | std::ios::binary);
        if (!jsonl) {
            err << "error: cannot write " << path << "\n";
            return 1;
        }
        jsonl.precision(17);
        for (const auto &r : results) {
            jsonl << "{\"axis\":\"" << r.point.axis << "\","
                  << "\"point\":\"" << r.point.label << "\","
                  << "\"sse\":" << r.sse
                  << ",\"cost_bits\":" << r.point.costBits
                  << ",\"mean_ipc\":" << r.meanIpc
                  << ",\"pairs\":" << r.pairs
                  << ",\"errored\":" << r.errored << ",\"dominated\":"
                  << (r.dominated ? "true" : "false")
                  << ",\"knee\":" << (r.knee ? "true" : "false")
                  << "}\n";
        }
        out << "wrote " << results.size() << " point record(s) to "
            << path << "\n";
    }

    TextTable table({"axis", "point", "SSE (pp^2)", "cost (bits)",
                     "mean IPC", "pairs", "errored", "Pareto"});
    renderExploreTable(results, table);
    if (command.hasFlag("explore-out")) {
        const std::string path = command.flag("explore-out");
        std::ofstream csv(path, std::ios::trunc | std::ios::binary);
        if (!csv) {
            err << "error: cannot write " << path << "\n";
            return 1;
        }
        table.renderCsv(csv);
        out << "wrote Pareto table to " << path << "\n";
    }
    if (command.hasFlag("csv")) {
        table.renderCsv(out);
        return 0;
    }
    std::string sweep_label = axis;
    if (!multi.empty()) {
        sweep_label.clear();
        for (std::size_t i = 0; i < multi.size(); ++i)
            sweep_label += (i == 0 ? "" : "+") + multi[i];
        sweep_label +=
            mode == "descent" ? " (coordinate descent)" : " (cross)";
    }
    out << "design-space sweep of axis '" << sweep_label << "' ("
        << results.size() << " point(s), "
        << workloads::inputSizeName(size)
        << "; * = Pareto-optimal, knee = selected trade-off):\n";
    table.render(out);
    if (descent.empty()) {
        for (const auto &r : results) {
            if (r.knee) {
                out << "knee: " << r.point.label << " (SSE "
                    << fmtDouble(r.sse, 3) << ", "
                    << fmtDouble(r.point.costBits, 0) << " bits)\n";
            }
        }
    } else {
        for (std::size_t k = 0; k < descent.size(); ++k) {
            const explore::PointResult &pick =
                descent[k].points[descent[k].chosen];
            out << "descent step " << k + 1 << " (" << descent[k].axis
                << "): " << pick.point.label << " (SSE "
                << fmtDouble(pick.sse, 3) << ", "
                << fmtDouble(pick.point.costBits, 0) << " bits)\n";
        }
    }
    return 0;
}

int
cmdMerge(const CommandLine &command, std::ostream &out,
         std::ostream &err)
{
    if (command.positional.size() < 2) {
        err << "error: merge needs shard journal files (try: spec17 "
               "merge --out=merged.csv shard1.csv shard2.csv ...)\n";
        return 2;
    }
    if (!command.hasFlag("out")) {
        err << "error: merge needs --out=FILE for the merged "
               "journal\n";
        return 2;
    }
    const std::vector<std::string> paths(
        command.positional.begin() + 1, command.positional.end());
    const auto outcome = suite::mergeJournals(
        paths, command.flag("out"), command.hasFlag("allow-partial"));
    if (!outcome.ok) {
        err << "error: " << outcome.error << "\n";
        return 1;
    }
    out << "merged " << outcome.shardsMerged << " shard(s), "
        << outcome.recordsWritten << " record(s) -> "
        << command.flag("out") << "\n";
    if (outcome.recordsDropped > 0)
        out << "dropped " << outcome.recordsDropped
            << " record(s) after the first gap (--allow-partial)\n";
    return 0;
}

int
cmdFsck(const CommandLine &command, std::ostream &out,
        std::ostream &err)
{
    if (command.positional.size() < 2) {
        err << "error: fsck needs journal files (try: spec17 fsck "
               "results.cpu2017.ref.csv)\n";
        return 2;
    }
    const bool repair = command.hasFlag("repair");
    int bad = 0;
    for (std::size_t i = 1; i < command.positional.size(); ++i) {
        const std::string &path = command.positional[i];
        const auto scan = suite::scanJournal(path);
        if (!scan.fileOk) {
            out << path << ": cannot read\n";
            ++bad;
            continue;
        }
        if (!scan.headerOk) {
            // No trusted campaign header means no trusted content:
            // nothing --repair could keep.
            out << path << ": UNREPAIRABLE (" << scan.headerError
                << ")\n";
            ++bad;
            continue;
        }
        out << path << ": v" << scan.header.version << " config "
            << scan.header.configFingerprint << " shard "
            << scan.header.shardLabel() << ", " << scan.records.size()
            << " intact record(s)";
        if (scan.corrupt) {
            out << "; CORRUPT at record " << scan.corruptRecord
                << " (" << scan.corruptReason << ")";
            if (repair) {
                std::string error;
                if (suite::repairJournal(path, error)) {
                    out << "; repaired (damaged suffix dropped)";
                } else {
                    out << "; repair FAILED: " << error;
                    ++bad;
                }
            } else {
                ++bad;
            }
        }
        out << "\n";
    }
    return bad > 0 ? 1 : 0;
}

int
cmdSubset(const CommandLine &command, std::ostream &out,
          std::ostream &err)
{
    const std::string which = command.flag("set", "rate");
    if (which != "rate" && which != "speed") {
        err << "error: --set must be rate or speed\n";
        return 2;
    }
    core::CharacterizerOptions options;
    options.runner = runnerOptionsOf(command);
    if (command.hasFlag("no-cache"))
        options.cachePath.clear();
    core::Characterizer session(options);
    const auto analysis = session.redundancyFor(which == "speed");
    const auto subset = core::suggestSubset(
        analysis,
        static_cast<std::size_t>(command.flagUint("clusters", 0)));

    out << "suggested " << which << " subset (" << subset.numClusters()
        << " of " << analysis.pairNames.size() << " pairs, "
        << fmtDouble(subset.savingPct(), 1) << "% time saved):\n";
    for (const auto &rep : subset.representatives) {
        out << "  " << rep.name << "  ("
            << fmtDouble(rep.seconds, 1) << " s)\n";
    }
    return 0;
}

int
cmdPhases(const CommandLine &command, std::ostream &out,
          std::ostream &err)
{
    if (command.positional.size() < 2) {
        err << "error: phases needs an application name\n";
        return 2;
    }
    bool ok = false;
    const InputSize size = sizeOf(command, err, ok);
    if (!ok)
        return 2;
    const std::string &name = command.positional[1];
    const auto &suite = workloads::cpu2017Suite();
    const workloads::WorkloadProfile *profile = nullptr;
    for (const auto &candidate : suite) {
        if (candidate.name == name)
            profile = &candidate;
    }
    if (profile == nullptr) {
        err << "error: no application named '" << name << "'\n";
        return 2;
    }

    const auto runner_options = runnerOptionsOf(command);
    workloads::BuildOptions build;
    build.sampleOps = runner_options.sampleOps * 4;
    trace::SyntheticTraceGenerator source(
        workloads::buildTraceParams({profile, size, 0}, build, 0));

    core::PhaseOptions phase_options;
    phase_options.intervalOps =
        std::max<std::uint64_t>(20'000, build.sampleOps / 20);
    phase_options.warmupOps = phase_options.intervalOps;
    const auto analysis = core::analyzePhases(
        source, runner_options.system, phase_options);

    out << "timeline: ";
    for (std::size_t label : analysis.labels)
        out << static_cast<char>('A' + label);
    out << "\n";
    for (const auto &phase : analysis.phases) {
        out << "phase " << static_cast<char>('A' + phase.id) << ": "
            << fmtDouble(100.0 * phase.weight, 1) << "% of the run, "
            << "mean IPC " << fmtDouble(phase.meanIpc, 3)
            << ", simulation point at interval "
            << phase.representative << "\n";
    }
    out << "sampled-IPC estimate " <<
        fmtDouble(analysis.sampledIpcEstimate(), 3) << " vs full "
        << fmtDouble(analysis.fullIpc(), 3) << "\n";
    return 0;
}

} // namespace

std::string
CommandLine::flag(const std::string &key,
                  const std::string &fallback) const
{
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
}

std::uint64_t
CommandLine::flagUint(const std::string &key,
                      std::uint64_t fallback) const
{
    const auto it = flags.find(key);
    if (it == flags.end())
        return fallback;
    try {
        return std::stoull(it->second);
    } catch (const std::exception &) {
        SPEC17_FATAL("flag --", key, " wants a number, got '",
                     it->second, "'");
    }
}

bool
CommandLine::hasFlag(const std::string &key) const
{
    return flags.count(key) > 0;
}

CommandLine
parseCommandLine(int argc, const char *const *argv)
{
    CommandLine command;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) == 0) {
            const auto eq = arg.find('=');
            if (eq == std::string::npos)
                command.flags[arg.substr(2)] = "";
            else
                command.flags[arg.substr(2, eq - 2)] =
                    arg.substr(eq + 1);
        } else {
            command.positional.push_back(arg);
        }
    }
    if (!command.positional.empty())
        command.command = command.positional.front();
    return command;
}

const std::vector<FlagSpec> &
flagTable()
{
    // Single source of truth for the accepted flag set: usage()
    // renders this table and runCommand() validates against it.
    static const std::vector<FlagSpec> table = {
        {"suite", "cpu2017|cpu2006", "which suite (default cpu2017)",
         "common flags"},
        {"size", "test|train|ref", "input size (default ref)",
         "common flags"},
        {"input", "N", "1-based input index (default 1)",
         "common flags"},
        {"sample", "N", "simulated micro-ops measured per pair",
         "common flags"},
        {"warmup", "N", "simulated micro-ops warmed before measuring",
         "common flags"},
        {"predictor", "NAME",
         "static-taken|bimodal|gshare|tournament|tage", "common flags"},
        {"prefetcher", "NAME", "none|next-line|stride|stream",
         "common flags"},
        {"set", "rate|speed", "pair set for subset", "common flags"},
        {"clusters", "N", "force the subset size", "common flags"},
        {"csv", "", "CSV output (characterize)", "common flags"},
        {"no-cache", "", "ignore the result cache", "common flags"},
        {"out", "FILE", "output path (record)", "common flags"},
        {"tolerance", "N", "allowed deviation in pp (validate)",
         "common flags"},
        {"strict", "", "nonzero exit on deviations (validate)",
         "common flags"},
        {"help", "", "print this help", "common flags"},
        {"retries", "N", "retry failed pairs up to N times",
         "fault isolation (characterize)"},
        {"retry-backoff-ms", "N",
         "base backoff between retries (doubles per attempt)",
         "fault isolation (characterize)"},
        {"pair-deadline", "N",
         "per-pair micro-op budget (deterministic watchdog)",
         "fault isolation (characterize)"},
        {"pair-deadline-ms", "N", "per-pair wall-clock budget",
         "fault isolation (characterize)"},
        {"resume", "", "resume an interrupted sweep from the journal",
         "fault isolation (characterize)"},
        {"sample-interval-ops", "N",
         "per-pair interval series every N micro-ops (perf stat -I; "
         "0=off)",
         "telemetry (stat, characterize)"},
        {"telemetry-out", "DIR",
         "write one series file per pair into DIR",
         "telemetry (stat, characterize)"},
        {"telemetry-format", "csv|jsonl",
         "series file format (default csv)",
         "telemetry (stat, characterize)"},
        {"progress", "",
         "throttled sweep_progress events on stderr (pair k/N, "
         "ops/s, ETA)",
         "telemetry (stat, characterize)"},
        {"jobs", "N",
         "sweep worker threads (default 1; 0=hardware concurrency); "
         "results are byte-identical at any N",
         "parallel execution (characterize)"},
        {"batch-ops", "N",
         "fast-lane micro-op batch size (default 256); results are "
         "byte-identical at any N >= 1",
         "batched hot path (stat, characterize)"},
        {"unbatched-stepping", "",
         "per-op reference lane instead of the batched fast lane "
         "(identity debugging; slow)",
         "batched hot path (stat, characterize)"},
        {"shard", "K/N",
         "run shard K of N of the sweep; journals to a per-shard "
         "file, fuse with `spec17 merge`",
         "sharded campaigns (characterize, merge, fsck)"},
        {"allow-partial", "",
         "merge: keep the contiguous record prefix when shards are "
         "missing or partial",
         "sharded campaigns (characterize, merge, fsck)"},
        {"repair", "",
         "fsck: atomically drop the damaged suffix of corrupt "
         "journals",
         "sharded campaigns (characterize, merge, fsck)"},
        {"apps", "A,B,...",
         "applications to co-run (default: a 4-app demo subset)",
         "co-run interference (corun)"},
        {"quartets", "", "4-app groups instead of pairs",
         "co-run interference (corun)"},
        {"no-self", "", "skip self-pairs (two copies of one app)",
         "co-run interference (corun)"},
        {"partition", "",
         "sweep every contiguous CAT way split per pair (Pareto "
         "table)",
         "co-run interference (corun)"},
        {"corun-chunk", "N",
         "context-interleave granularity in micro-ops (contention "
         "semantics: part of the config key)",
         "co-run interference (corun)"},
        {"export-jsonl", "FILE",
         "write one JSON record per group/point (corun, explore)",
         "co-run interference (corun)"},
        {"l2-prefetcher", "NAME",
         "none|next-line|stride|stream at the L2 (config-key member)",
         "uarch mechanisms (stat, characterize, explore)"},
        {"way-predictor", "NAME",
         "L1D way prediction: none|mru|utag (config-key member)",
         "uarch mechanisms (stat, characterize, explore)"},
        {"way-penalty", "N",
         "extra load cycles on a way mispredict (default 2)",
         "uarch mechanisms (stat, characterize, explore)"},
        {"stream-degree", "N",
         "stream-prefetch lines issued per trained observation "
         "(default 4)",
         "uarch mechanisms (stat, characterize, explore)"},
        {"stream-distance", "N",
         "stream-prefetch run-ahead window in lines (default 16)",
         "uarch mechanisms (stat, characterize, explore)"},
        {"tage-tables", "N",
         "TAGE tagged history tables (default 4; used with "
         "--predictor=tage)",
         "uarch mechanisms (stat, characterize, explore)"},
        {"axis", "AXIS",
         "swept axis: predictor|prefetcher|l2-prefetcher|"
         "way-predictor",
         "design-space exploration (explore)"},
        {"multi-axis", "A,B,...",
         "sweep two or more axes together (mechanism axes plus "
         "tage-geometry|stream-geometry grids)",
         "design-space exploration (explore)"},
        {"multi-axis-mode", "MODE",
         "product (cross every combination, default) or descent "
         "(per-axis knee folded into the base)",
         "design-space exploration (explore)"},
        {"explore-out", "FILE", "write the Pareto table as CSV",
         "design-space exploration (explore)"},
        {"trace-arena-mb", "N",
         "trace-arena byte budget in MiB (default 512; 0 disables "
         "capture/replay); results are byte-identical either way",
         "trace capture/replay (stat, characterize, explore, corun)"},
        {"arena-spill-dir", "DIR",
         "persist captured arenas as S17A files under DIR; evicted "
         "or cross-run arenas reload instead of recapturing",
         "trace capture/replay (stat, characterize, explore, corun)"},
    };
    return table;
}

std::string
usage()
{
    std::string text =
        "spec17 -- SPEC CPU2017 workload characterization framework\n"
        "usage: spec17 <command> [flags]\n"
        "\n"
        "commands:\n"
        "  list                         enumerate application-input "
        "pairs\n"
        "  stat <app>                   run one pair, print perf "
        "counters\n"
        "  characterize                 sweep a suite, tabulate "
        "metrics\n"
        "  corun                        co-run interference sweep on "
        "the shared L3\n"
        "  explore --axis=AXIS          one-axis uarch design-space "
        "sweep (SSE-vs-cost Pareto table)\n"
        "  explore --multi-axis=A,B     multi-axis sweep: cross-"
        "product grid or coordinate descent\n"
        "  subset                       suggest a representative "
        "subset\n"
        "  phases <app>                 phase analysis of one pair\n"
        "  record <app> [--out=FILE]    save a micro-op trace to disk\n"
        "  replay <file>                run a saved trace\n"
        "  validate [--strict]          profile targets vs measured\n"
        "  events                       list the simulated perf events\n"
        "  config                       print machine configuration\n"
        "  merge --out=FILE <shards...> fuse shard journals into the "
        "canonical journal\n"
        "  fsck [--repair] <files...>   verify journal integrity "
        "record by record\n";
    const char *group = "";
    for (const FlagSpec &flag : flagTable()) {
        if (std::string(group) != flag.group) {
            group = flag.group;
            text += "\n";
            text += group;
            text += ":\n";
        }
        std::string left = "  --" + std::string(flag.name);
        if (flag.placeholder[0] != '\0')
            left += "=" + std::string(flag.placeholder);
        if (left.size() < 31)
            left.resize(31, ' ');
        else
            left += " ";
        text += left + flag.help + "\n";
    }
    return text;
}

int
runCommand(const CommandLine &command, std::ostream &out,
           std::ostream &err)
{
    if (command.command.empty() || command.hasFlag("help")) {
        out << usage();
        return command.command.empty() ? 2 : 0;
    }
    // Reject flags outside the table so a typo'd flag is a loud
    // error instead of a silently ignored no-op.
    for (const auto &[name, value] : command.flags) {
        const bool known = std::any_of(
            flagTable().begin(), flagTable().end(),
            [&name](const FlagSpec &spec) { return name == spec.name; });
        if (!known) {
            err << "error: unknown flag '--" << name
                << "' (see spec17 --help for the accepted flags)\n";
            return 2;
        }
    }
    // A zero batch size is meaningless; reject the explicit value
    // loudly (same contained-error style as the corun-chunk
    // validation) rather than silently running some other size.
    if (command.hasFlag("batch-ops")
        && command.flagUint("batch-ops", 0) == 0) {
        err << "error: --batch-ops must be positive\n";
        return 2;
    }
    // Uarch-mechanism flag validation: unknown names and
    // contradictory combinations are contained usage errors here,
    // before any simulator construction can hit the library-level
    // fatal checks.
    // Spilling exists to persist captured arenas; with capture/replay
    // disabled there is nothing to spill, so the combination is a
    // contradiction rather than a silent no-op.
    if (command.hasFlag("arena-spill-dir")
        && command.flagUint("trace-arena-mb", 512) == 0) {
        err << "error: --arena-spill-dir is contradictory with "
               "--trace-arena-mb=0 (trace capture/replay disabled, "
               "nothing to spill)\n";
        return 2;
    }
    if (command.hasFlag("way-predictor")) {
        const std::string name = command.flag("way-predictor");
        if (name != "none" && name != "mru" && name != "utag") {
            err << "error: unknown --way-predictor '" << name
                << "' (want none|mru|utag)\n";
            return 2;
        }
        if (name != "none"
            && runnerOptionsOf(command).system.hierarchy.l1d.assoc
                   < 2) {
            err << "error: --way-predictor=" << name
                << " is contradictory with a direct-mapped L1D "
                   "(nothing to predict)\n";
            return 2;
        }
    }
    if (command.hasFlag("tage-tables")
        && command.flagUint("tage-tables", 0) == 0) {
        err << "error: --tage-tables=0 is contradictory (TAGE needs "
               "at least one tagged history table)\n";
        return 2;
    }
    if (command.hasFlag("stream-degree")
        && command.flagUint("stream-degree", 0) == 0) {
        err << "error: --stream-degree must be positive\n";
        return 2;
    }
    {
        const std::uint64_t degree =
            command.flagUint("stream-degree", 4);
        const std::uint64_t distance =
            command.flagUint("stream-distance", 16);
        if (degree > distance) {
            err << "error: --stream-degree=" << degree
                << " is contradictory with --stream-distance="
                << distance
                << " (a burst cannot overshoot the run-ahead "
                   "window)\n";
            return 2;
        }
    }
    if (command.command == "config")
        return cmdConfig(command, out);
    if (command.command == "list")
        return cmdList(command, out, err);
    if (command.command == "stat")
        return cmdStat(command, out, err);
    if (command.command == "characterize")
        return cmdCharacterize(command, out, err);
    if (command.command == "corun")
        return cmdCorun(command, out, err);
    if (command.command == "explore")
        return cmdExplore(command, out, err);
    if (command.command == "subset")
        return cmdSubset(command, out, err);
    if (command.command == "phases")
        return cmdPhases(command, out, err);
    if (command.command == "record")
        return cmdRecord(command, out, err);
    if (command.command == "replay")
        return cmdReplay(command, out, err);
    if (command.command == "validate")
        return cmdValidate(command, out, err);
    if (command.command == "events")
        return cmdEvents(command, out);
    if (command.command == "merge")
        return cmdMerge(command, out, err);
    if (command.command == "fsck")
        return cmdFsck(command, out, err);
    err << "error: unknown command '" << command.command << "'\n\n"
        << usage();
    return 2;
}

} // namespace cli
} // namespace spec17
